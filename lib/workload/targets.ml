type ts =
  [ `Logical
  | `Delayed
  | `Multislot
  | `Tl2
  | `Hardware
  | `Hardware_strict
  | `Hardware_strict_cas
  | `Adaptive ]

(* The one provider registry.  Names, aliases, CLI help text, structure
   compatibility ([addressable]) and tie semantics all derive from this
   table — the drift-prone per-subcommand string matches are gone. *)
type info = {
  key : ts;
  name : string;  (* canonical, as artifacts/series spell it *)
  aliases : string list;
  doc : string;  (* one line for --provider help *)
  addressable : bool;
      (* exposes a stable timestamp-word address (DCSS labeling) *)
  ties : bool;  (* concurrent labels may compare equal/tied in rank *)
}

let registry : info list =
  [
    {
      key = `Logical;
      name = "logical";
      aliases = [];
      doc = "shared fetch-and-add counter (the paper's software baseline)";
      addressable = true;
      ties = false;
    };
    {
      key = `Delayed;
      name = "delayed";
      aliases = [ "delayed-increment" ];
      doc =
        "delayed-increment counter (flock): racers of one tuned spin \
         window share a label";
      addressable = false;
      ties = true;
    };
    {
      key = `Multislot;
      name = "multislot";
      aliases = [ "slots" ];
      doc =
        "summed multi-slot counter (flock): each domain FAAs its own \
         padded slot, stamp = sum";
      addressable = false;
      ties = true;
    };
    {
      key = `Tl2;
      name = "tl2";
      aliases = [];
      doc =
        "TL2-style epoch stamp (verlib): slot id in the low bits, epochs \
         reused without shared writes";
      addressable = false;
      ties = true;
    };
    {
      key = `Hardware;
      name = "rdtscp";
      aliases = [ "hardware" ];
      doc = "raw RDTSCP;LFENCE stamps (ties possible, Section III-A)";
      addressable = false;
      ties = true;
    };
    {
      key = `Hardware_strict;
      name = "rdtscp-strict";
      aliases = [ "sharded" ];
      doc = "strict sharded TSC: slot id in the low bits, no common-path CAS";
      addressable = false;
      ties = false;
    };
    {
      key = `Hardware_strict_cas;
      name = "rdtscp-strict-cas";
      aliases = [ "strict" ];
      doc = "strict TSC via shared-word tie-bump CAS (the Jiffy scheme)";
      addressable = false;
      ties = false;
    };
    {
      key = `Adaptive;
      name = "adaptive";
      aliases = [];
      doc =
        "contention-laddered zoo: logical -> delayed -> multislot -> tl2 \
         -> strict TSC, self-selecting";
      addressable = false;
      ties = true;
    };
  ]

let info_of (ts : ts) = List.find (fun i -> i.key = ts) registry
let ts_name ts = (info_of ts).name
let all_ts : ts list = List.map (fun i -> i.key) registry

let ts_of_name n =
  List.find_map
    (fun i -> if i.name = n || List.mem n i.aliases then Some i.key else None)
    registry

let provider_help () =
  String.concat "\n"
    (List.map
       (fun i ->
         let aliases =
           if i.aliases = [] then ""
           else " (alias " ^ String.concat ", " i.aliases ^ ")"
         in
         Printf.sprintf "  %-18s %s%s" i.name i.doc aliases)
       registry)

(* The reclamation axis mirrors the provider axis: one registry, and
   every name-keyed surface derives from it. *)
type reclaim = [ `Ebr | `Qsbr | `Qsbr_tsc ]

type reclaim_info = {
  rkey : reclaim;
  rname : string;
  raliases : string list;
  rdoc : string;
}

let reclaim_registry : reclaim_info list =
  [
    {
      rkey = `Ebr;
      rname = "ebr";
      raliases = [];
      rdoc =
        "per-op epoch announcements + RCU read sections (the original \
         protocol; default)";
    };
    {
      rkey = `Qsbr;
      rname = "qsbr";
      raliases = [];
      rdoc =
        "quiescence announced only at loop/batch boundaries over a shared \
         epoch counter";
    };
    {
      rkey = `Qsbr_tsc;
      rname = "qsbr-tsc";
      raliases = [ "tsc" ];
      rdoc =
        "boundary quiescence ordered by raw TSC stamps (Ordo-bounded \
         skew); no shared epoch counter";
    };
  ]

let reclaim_info_of (r : reclaim) =
  List.find (fun i -> i.rkey = r) reclaim_registry

let reclaim_name r = (reclaim_info_of r).rname
let all_reclaims : reclaim list = List.map (fun i -> i.rkey) reclaim_registry

let reclaim_of_name n =
  List.find_map
    (fun i ->
      if i.rname = n || List.mem n i.raliases then Some i.rkey else None)
    reclaim_registry

let reclaim_help () =
  String.concat "\n"
    (List.map
       (fun i ->
         let aliases =
           if i.raliases = [] then ""
           else " (alias " ^ String.concat ", " i.raliases ^ ")"
         in
         Printf.sprintf "  %-10s %s%s" i.rname i.rdoc aliases)
       reclaim_registry)

let backend_of : reclaim -> (module Hwts_reclaim.Intf.BACKEND) = function
  | `Ebr -> (module Hwts_reclaim.Ebr_backend)
  | `Qsbr -> (module Hwts_reclaim.Qsbr)
  | `Qsbr_tsc -> (module Hwts_reclaim.Qsbr_tsc)

(* Only the structures built over a reclamation backend respond to the
   axis; sweeping the others across backends would triplicate identical
   legs. *)
let reclaim_sensitive = function
  | "bst-ebrrq-lockfree" | "citrus-vcas" | "citrus-bundle" | "citrus-ebrrq" ->
    true
  | _ -> false

(* [`Hardware_strict] is the sharded strict provider: raw TSC stamps are
   not strictly increasing across domains (the tie corner case of Section
   III-A), so techniques that need strictness get rdtscp wrapped in
   {!Hwts.Timestamp.Strict_sharded} — strict labels without a shared-word
   CAS on the common path.  [`Hardware_strict_cas] is the original
   shared-word tie-bump ({!Hwts.Timestamp.Strict}, the Jiffy scheme),
   kept for comparison.  [`Delayed], [`Multislot] and [`Tl2] are the
   flock/verlib logical-clock optimizations; [`Adaptive] self-selects
   across the whole zoo per the measured contention.  The plain
   [`Hardware] series keeps raw [RDTSCP; LFENCE] stamps for comparison
   with the paper's figures. *)

(* Every provider handed to a structure goes through
   {!Hwts.Timestamp.Traced}, so label acquisition shows up as an
   [Acquire] phase in traces for all five series (one dead branch per
   advance when tracing is off). *)
let provider_of (ts : ts) : (module Hwts.Timestamp.S) =
  match ts with
  | `Logical ->
    let module L0 = Hwts.Timestamp.Logical () in
    let module L = Hwts.Timestamp.Traced (L0) in
    (module L)
  | `Delayed ->
    let module D0 = Hwts.Timestamp.Delayed () in
    let module D = Hwts.Timestamp.Traced (D0) in
    (module D)
  | `Multislot ->
    let module M0 = Hwts.Timestamp.Multislot () in
    let module M = Hwts.Timestamp.Traced (M0) in
    (module M)
  | `Tl2 ->
    let module T0 = Hwts.Timestamp.Tl2 () in
    let module T = Hwts.Timestamp.Traced (T0) in
    (module T)
  | `Hardware ->
    let module H = Hwts.Timestamp.Traced (Hwts.Timestamp.Hardware) in
    (module H)
  | `Hardware_strict ->
    let module S0 = Hwts.Timestamp.Strict_sharded (Hwts.Timestamp.Hardware) () in
    let module S = Hwts.Timestamp.Traced (S0) in
    (module S)
  | `Hardware_strict_cas ->
    let module S0 = Hwts.Timestamp.Strict (Hwts.Timestamp.Hardware) () in
    let module S = Hwts.Timestamp.Traced (S0) in
    (module S)
  | `Adaptive ->
    let module A0 = Hwts.Timestamp.Adaptive (Hwts.Timestamp.Hardware) () in
    let module A = Hwts.Timestamp.Traced (A0) in
    (module A)

type instance = {
  structure : (module Dstruct.Ordered_set.RQ);
  now : unit -> int;
  provider : string;
  reclaim : string; (* reclaim_name of the backend axis value *)
  adaptive : Hwts.Timestamp.adaptive_ctl option;
}

(* The structure and [now] share one provider module, so timestamps read
   through [now] are comparable with the labels the structure's range
   queries claim — the invariant the history recorder in [lib/check]
   relies on.  (For a generative logical clock, a second [Logical ()]
   would be a different clock entirely.) *)
let instance_of ?(reclaim = `Ebr) f (ts : ts) : instance =
  match ts with
  | `Adaptive ->
    (* Built here rather than through [provider_of] so the instance keeps
       the ctl handle: benches record switch points, torture forces
       migrations mid-round. *)
    let module A = Hwts.Timestamp.Adaptive (Hwts.Timestamp.Hardware) () in
    let module AT = Hwts.Timestamp.Traced (A) in
    {
      structure = f (module AT : Hwts.Timestamp.S);
      now = A.read;
      provider = ts_name ts;
      reclaim = reclaim_name reclaim;
      adaptive = Some A.ctl;
    }
  | _ ->
    let p = provider_of ts in
    let module T = (val p) in
    {
      structure = f p;
      now = T.read;
      provider = ts_name ts;
      reclaim = reclaim_name reclaim;
      adaptive = None;
    }

let bst_vcas_m (module T : Hwts.Timestamp.S) : (module Dstruct.Ordered_set.RQ) =
  (module Rangequery.Bst_vcas.Make (T))

let citrus_vcas_m (module R : Hwts_reclaim.Intf.BACKEND)
    (module T : Hwts.Timestamp.S) : (module Dstruct.Ordered_set.RQ) =
  (module Rangequery.Citrus_vcas.Make (R) (T))

let citrus_bundle_m (module R : Hwts_reclaim.Intf.BACKEND)
    (module T : Hwts.Timestamp.S) : (module Dstruct.Ordered_set.RQ) =
  (module Rangequery.Citrus_bundle.Make (R) (T))

let citrus_ebrrq_m (module R : Hwts_reclaim.Intf.BACKEND)
    (module T : Hwts.Timestamp.S) : (module Dstruct.Ordered_set.RQ) =
  (module Rangequery.Citrus_ebrrq.Make (R) (T))

let skiplist_bundle_m (module T : Hwts.Timestamp.S) :
    (module Dstruct.Ordered_set.RQ) =
  (module Rangequery.Skiplist_bundle.Make (T))

let skiplist_vcas_m (module T : Hwts.Timestamp.S) :
    (module Dstruct.Ordered_set.RQ) =
  (module Rangequery.Skiplist_vcas.Make (T))

let lazylist_bundle_m (module T : Hwts.Timestamp.S) :
    (module Dstruct.Ordered_set.RQ) =
  (module Rangequery.Lazylist_bundle.Make (T))

(* The KV map run as a set (unit values): exercises the leaf-replacement
   write path and value plumbing under the same workload as its set
   sibling, so regressions in the KV-only code show up in throughput
   sweeps, not just unit tests. *)
module Kv_as_set (T : Hwts.Timestamp.S) = struct
  module K = Rangequery.Bst_vcas_kv.Make (T)

  type t = unit K.t

  let name = K.name
  let create () = K.create ()
  let insert t k = K.add t k ()
  let delete t k = K.remove t k
  let contains t k = K.mem t k
  let range_query t ~lo ~hi = List.map fst (K.range_query t ~lo ~hi)

  let range_query_labeled t ~lo ~hi =
    let ts, kvs = K.range_query_labeled t ~lo ~hi in
    (ts, List.map fst kvs)

  let range_queries_labeled t ranges =
    let ts, kvss = K.range_queries_labeled t ranges in
    (ts, Array.map (List.map fst) kvss)

  let to_list t = List.map fst (K.to_alist t)
  let size t = K.size t

  type snap = K.shandle

  let snapshot t = K.snapshot t
  let snap_label s = K.snap_label s
  let snap_release t s = K.snap_release t s
  let lookup_at t s k = K.find_snap t s k <> None
  let collect_at t s ~lo ~hi = List.map fst (K.range_snap t s ~lo ~hi)
  let quiesce _ = ()
  let offline _ = ()
end

let bst_vcas_kv_m (module T : Hwts.Timestamp.S) :
    (module Dstruct.Ordered_set.RQ) =
  (module Kv_as_set (T))

(* The lock-free EBR-RQ labels via DCSS against the timestamp word's
   address, so it is unwritable over an address-free provider (Section
   IV); requesting a hardware series for it is a caller bug. *)
let bst_ebrrq_lockfree_instance ?(reclaim = `Ebr) (ts : ts) : instance =
  match ts with
  | `Logical ->
    let module L = Hwts.Timestamp.Logical () in
    (* The Traced wrapper hides [raw], which the DCSS labeling needs, so
       re-export it alongside the traced operations. *)
    let module LT = struct
      include Hwts.Timestamp.Traced (L)

      let raw = L.raw
    end in
    let module R = (val backend_of reclaim) in
    {
      structure =
        (module Rangequery.Bst_ebrrq_lockfree.Make (R) (LT) : Dstruct
                                                              .Ordered_set
                                                              .RQ);
      now = L.read;
      provider = ts_name `Logical;
      reclaim = reclaim_name reclaim;
      adaptive = None;
    }
  | _ -> invalid_arg "bst-ebrrq-lockfree requires a logical (addressable) clock"

let all_instances : (string * (reclaim -> ts -> instance)) list =
  [
    ("bst-vcas", fun r ts -> instance_of ~reclaim:r bst_vcas_m ts);
    ("bst-vcas-kv", fun r ts -> instance_of ~reclaim:r bst_vcas_kv_m ts);
    ( "bst-ebrrq-lockfree",
      fun r ts -> bst_ebrrq_lockfree_instance ~reclaim:r ts );
    ( "citrus-vcas",
      fun r ts ->
        instance_of ~reclaim:r (citrus_vcas_m (backend_of r)) ts );
    ( "citrus-bundle",
      fun r ts ->
        instance_of ~reclaim:r (citrus_bundle_m (backend_of r)) ts );
    ( "citrus-ebrrq",
      fun r ts ->
        instance_of ~reclaim:r (citrus_ebrrq_m (backend_of r)) ts );
    ("skiplist-bundle", fun r ts -> instance_of ~reclaim:r skiplist_bundle_m ts);
    ("skiplist-vcas", fun r ts -> instance_of ~reclaim:r skiplist_vcas_m ts);
    ("lazylist-bundle", fun r ts -> instance_of ~reclaim:r lazylist_bundle_m ts);
  ]

let instance ?(reclaim = `Ebr) name ts =
  match List.assoc_opt name all_instances with
  | Some f -> f reclaim ts
  | None -> invalid_arg ("unknown structure: " ^ name)

let bst_vcas ts = (instance "bst-vcas" ts).structure
let citrus_vcas ts = (instance "citrus-vcas" ts).structure
let citrus_bundle ts = (instance "citrus-bundle" ts).structure
let citrus_ebrrq ts = (instance "citrus-ebrrq" ts).structure
let skiplist_bundle ts = (instance "skiplist-bundle" ts).structure
let skiplist_vcas ts = (instance "skiplist-vcas" ts).structure
let lazylist_bundle ts = (instance "lazylist-bundle" ts).structure
let bst_vcas_kv ts = (instance "bst-vcas-kv" ts).structure
let bst_ebrrq_lockfree () = (instance "bst-ebrrq-lockfree" `Logical).structure

let all =
  List.map
    (fun (name, f) -> (name, fun ts -> (f `Ebr ts).structure))
    all_instances

(* The DCSS labeling needs the timestamp word's *address*; only
   registry entries marked [addressable] expose one (the adaptive
   provider has no stable word once migrated onto the TSC, the zoo
   schemes hide theirs behind sums/epochs). *)
let supports name (ts : ts) =
  name <> "bst-ebrrq-lockfree" || (info_of ts).addressable

(* Linked-list throughput is O(n) in the key range where the trees and
   skiplists are O(log n); sweeping every structure over one shared range
   either starves the list or removes the trees' depth.  Benchmarks that
   compare across structures use this per-structure range so each runs at
   a size its asymptotics can carry. *)
let preferred_key_range name ~default =
  if name = "lazylist-bundle" then min default 1_024 else default
