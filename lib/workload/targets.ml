type ts = [ `Logical | `Hardware | `Hardware_strict ]

let ts_name = function
  | `Logical -> "logical"
  | `Hardware -> "rdtscp"
  | `Hardware_strict -> "rdtscp-strict"

let all_ts : ts list = [ `Logical; `Hardware; `Hardware_strict ]

(* [`Hardware_strict] is the sharded strict provider: raw TSC stamps are
   not strictly increasing across domains (the tie corner case of Section
   III-A), so techniques that need strictness get rdtscp wrapped in
   {!Hwts.Timestamp.Strict_sharded} — strict labels without a shared-word
   CAS on the common path.  The plain [`Hardware] series keeps raw
   [RDTSCP; LFENCE] stamps for comparison with the paper's figures. *)

let bst_vcas (ts : ts) : (module Dstruct.Ordered_set.RQ) =
  match ts with
  | `Logical ->
    let module L = Hwts.Timestamp.Logical () in
    (module Rangequery.Bst_vcas.Make (L))
  | `Hardware -> (module Rangequery.Bst_vcas.Make (Hwts.Timestamp.Hardware))
  | `Hardware_strict ->
    let module S = Hwts.Timestamp.Strict_sharded (Hwts.Timestamp.Hardware) () in
    (module Rangequery.Bst_vcas.Make (S))

let citrus_vcas (ts : ts) : (module Dstruct.Ordered_set.RQ) =
  match ts with
  | `Logical ->
    let module L = Hwts.Timestamp.Logical () in
    (module Rangequery.Citrus_vcas.Make (L))
  | `Hardware -> (module Rangequery.Citrus_vcas.Make (Hwts.Timestamp.Hardware))
  | `Hardware_strict ->
    let module S = Hwts.Timestamp.Strict_sharded (Hwts.Timestamp.Hardware) () in
    (module Rangequery.Citrus_vcas.Make (S))

let citrus_bundle (ts : ts) : (module Dstruct.Ordered_set.RQ) =
  match ts with
  | `Logical ->
    let module L = Hwts.Timestamp.Logical () in
    (module Rangequery.Citrus_bundle.Make (L))
  | `Hardware -> (module Rangequery.Citrus_bundle.Make (Hwts.Timestamp.Hardware))
  | `Hardware_strict ->
    let module S = Hwts.Timestamp.Strict_sharded (Hwts.Timestamp.Hardware) () in
    (module Rangequery.Citrus_bundle.Make (S))

let citrus_ebrrq (ts : ts) : (module Dstruct.Ordered_set.RQ) =
  match ts with
  | `Logical ->
    let module L = Hwts.Timestamp.Logical () in
    (module Rangequery.Citrus_ebrrq.Make (L))
  | `Hardware -> (module Rangequery.Citrus_ebrrq.Make (Hwts.Timestamp.Hardware))
  | `Hardware_strict ->
    let module S = Hwts.Timestamp.Strict_sharded (Hwts.Timestamp.Hardware) () in
    (module Rangequery.Citrus_ebrrq.Make (S))

let skiplist_bundle (ts : ts) : (module Dstruct.Ordered_set.RQ) =
  match ts with
  | `Logical ->
    let module L = Hwts.Timestamp.Logical () in
    (module Rangequery.Skiplist_bundle.Make (L))
  | `Hardware ->
    (module Rangequery.Skiplist_bundle.Make (Hwts.Timestamp.Hardware))
  | `Hardware_strict ->
    let module S = Hwts.Timestamp.Strict_sharded (Hwts.Timestamp.Hardware) () in
    (module Rangequery.Skiplist_bundle.Make (S))

let skiplist_vcas (ts : ts) : (module Dstruct.Ordered_set.RQ) =
  match ts with
  | `Logical ->
    let module L = Hwts.Timestamp.Logical () in
    (module Rangequery.Skiplist_vcas.Make (L))
  | `Hardware ->
    (module Rangequery.Skiplist_vcas.Make (Hwts.Timestamp.Hardware))
  | `Hardware_strict ->
    let module S = Hwts.Timestamp.Strict_sharded (Hwts.Timestamp.Hardware) () in
    (module Rangequery.Skiplist_vcas.Make (S))

let lazylist_bundle (ts : ts) : (module Dstruct.Ordered_set.RQ) =
  match ts with
  | `Logical ->
    let module L = Hwts.Timestamp.Logical () in
    (module Rangequery.Lazylist_bundle.Make (L))
  | `Hardware ->
    (module Rangequery.Lazylist_bundle.Make (Hwts.Timestamp.Hardware))
  | `Hardware_strict ->
    let module S = Hwts.Timestamp.Strict_sharded (Hwts.Timestamp.Hardware) () in
    (module Rangequery.Lazylist_bundle.Make (S))

(* The KV map run as a set (unit values): exercises the leaf-replacement
   write path and value plumbing under the same workload as its set
   sibling, so regressions in the KV-only code show up in throughput
   sweeps, not just unit tests. *)
module Kv_as_set (T : Hwts.Timestamp.S) = struct
  module K = Rangequery.Bst_vcas_kv.Make (T)

  type t = unit K.t

  let name = K.name
  let create () = K.create ()
  let insert t k = K.add t k ()
  let delete t k = K.remove t k
  let contains t k = K.mem t k
  let range_query t ~lo ~hi = List.map fst (K.range_query t ~lo ~hi)
  let to_list t = List.map fst (K.to_alist t)
  let size t = K.size t
end

let bst_vcas_kv (ts : ts) : (module Dstruct.Ordered_set.RQ) =
  match ts with
  | `Logical ->
    let module L = Hwts.Timestamp.Logical () in
    (module Kv_as_set (L))
  | `Hardware -> (module Kv_as_set (Hwts.Timestamp.Hardware))
  | `Hardware_strict ->
    let module S = Hwts.Timestamp.Strict_sharded (Hwts.Timestamp.Hardware) () in
    (module Kv_as_set (S))

let bst_ebrrq_lockfree () : (module Dstruct.Ordered_set.RQ) =
  let module L = Hwts.Timestamp.Logical () in
  (module Rangequery.Bst_ebrrq_lockfree.Make (L))

(* The lock-free EBR-RQ labels via DCSS against the timestamp word's
   address, so it is unwritable over an address-free provider (Section
   IV); requesting a hardware series for it is a caller bug. *)
let bst_ebrrq_lockfree_ts (ts : ts) : (module Dstruct.Ordered_set.RQ) =
  match ts with
  | `Logical -> bst_ebrrq_lockfree ()
  | `Hardware | `Hardware_strict ->
    invalid_arg "bst-ebrrq-lockfree requires a logical (addressable) clock"

let all =
  [
    ("bst-vcas", bst_vcas);
    ("bst-vcas-kv", bst_vcas_kv);
    ("bst-ebrrq-lockfree", bst_ebrrq_lockfree_ts);
    ("citrus-vcas", citrus_vcas);
    ("citrus-bundle", citrus_bundle);
    ("citrus-ebrrq", citrus_ebrrq);
    ("skiplist-bundle", skiplist_bundle);
    ("skiplist-vcas", skiplist_vcas);
    ("lazylist-bundle", lazylist_bundle);
  ]

let supports name (ts : ts) =
  match (name, ts) with
  | "bst-ebrrq-lockfree", (`Hardware | `Hardware_strict) -> false
  | _ -> true

(* Linked-list throughput is O(n) in the key range where the trees and
   skiplists are O(log n); sweeping every structure over one shared range
   either starves the list or removes the trees' depth.  Benchmarks that
   compare across structures use this per-structure range so each runs at
   a size its asymptotics can carry. *)
let preferred_key_range name ~default =
  if name = "lazylist-bundle" then min default 1_024 else default
