(** Linearizability checker for integer-set histories.

    The sequential specification is a set of small integers; events carry
    real-time intervals, and range queries carry their full observed
    result set plus (optionally) the snapshot timestamp the structure
    claimed.  A labeled range must linearize at its label: its effective
    interval collapses to [label, label], so {!check} decides the
    snapshot-at-timestamp criterion, not just plain linearizability.

    Multi-point ops ([Multi_get]/[Multi_range]) model one
    {!Hwts_snapshot.t} handle: a batch of membership probes (or range
    scans) that all claim to answer from ONE cut, carried as a single
    event with a single label.  The checker holds every constituent to
    the same sequential state — and, when labeled, pins them all at the
    one claimed instant.

    Capacity limits (both from the bitmask encodings): at most
    {!max_events} events per history, keys in [0, {!max_key}]. *)

type op =
  | Insert of int
  | Delete of int
  | Contains of int
  | Range of int * int
  | Multi_get of int list
  | Multi_range of (int * int) list

type result = Bool of bool | Keys of int list | Bools of bool list | Keyss of int list list

type event = {
  start_t : int;
  end_t : int;
  op : op;
  result : result;
  label : int option;
      (** [Range]/[Multi_get]/[Multi_range] only: the snapshot timestamp
          the structure claimed, in the same clock that stamped
          [start_t]/[end_t].  [Some l] with [l] outside
          [start_t, end_t] — or any label on a point operation — makes
          the history invalid. *)
}

val max_events : int
val max_key : int

val ev : ?label:int -> int -> int -> op -> result -> event
(** [ev start end_ op result] builds an event (test convenience). *)

val check :
  ?initial:int list -> ?order:Hwts.Labeling.label_order -> event list -> bool
(** Whether some total order of the events (respecting real-time
    precedence of their effective intervals) is a legal sequential set
    execution from [initial] producing exactly the observed results.
    Wing–Gong DFS with memoization; worst case exponential, fine at
    {!max_events} scale.  [order] (default {!Hwts.Labeling.raw_order})
    is the provider's label comparator: it decides both label-in-interval
    validity and precedence between timestamped events, so histories
    stamped by a TL2-style clock pass
    [~order:(Hwts.Labeling.order_of_provider "tl2")]. *)

val record_history :
  domains:int ->
  ops_per_domain:int ->
  key_space:int ->
  seed:int ->
  insert:(int -> bool) ->
  delete:(int -> bool) ->
  contains:(int -> bool) ->
  event list
(** Run a seeded elemental-op workload on [domains] spawned domains and
    return the merged history, intervals stamped with the fenced TSC.
    For range-query histories stamped with the structure's own clock,
    use {!Recorder} instead. *)
