(* Seeded multi-domain torture driver: run a randomized elemental +
   range-query workload against a structure under fault injection, record
   the history with the structure's own clock, and hand it to the
   snapshot oracle.  Everything is derived from one seed so a failing
   round replays exactly (modulo true races — the replay outcome is
   reported as the [reproduced] flag). *)

type config = {
  structure : string;
  provider : Workload.Targets.ts;
  reclaim : Workload.Targets.reclaim;
  seed : int;
  rounds : int;
  domains : int;
  ops_per_domain : int;
  key_space : int;  (* keys drawn from [1, key_space] *)
  prefill : int;
  faults : bool;
  fault_period : int;
  multi : bool;
      (* also draw multi-point snapshot ops (Hwts_snapshot handles) *)
}

type failure = {
  round : int;
  round_seed : int;
  initial : int list;
  events : Lin_check.event list;
  minimized : Lin_check.event list;
  reproduced : bool;
}

type outcome = {
  config : config;
  rounds_run : int;
  events_total : int;
  faults_injected : int;
  failure : failure option;
}

let default_config ?(reclaim = `Ebr) ?(multi = false) ~structure ~provider
    ~seed () =
  {
    structure;
    provider;
    reclaim;
    seed;
    rounds = 12;
    domains = 4;
    ops_per_domain = 12;
    key_space = 12;
    prefill = 4;
    faults = true;
    fault_period = 4;
    multi;
  }

(* splitmix-style avalanche, for deriving independent per-round and
   per-domain seeds from the master seed *)
let mix a b =
  (* 63-bit truncations of the splitmix64 constants *)
  let h = a lxor (b * 0x1E3779B97F4A7C15) in
  let h = (h lxor (h lsr 30)) * 0x3F58476D1CE4E5B9 in
  let h = (h lxor (h lsr 27)) * 0x14D049BB133111EB in
  (h lxor (h lsr 31)) land max_int

let validate cfg =
  if cfg.domains < 1 then invalid_arg "check: domains must be >= 1";
  if cfg.domains * cfg.ops_per_domain > Lin_check.max_events then
    invalid_arg
      (Printf.sprintf "check: domains*ops_per_domain must be <= %d"
         Lin_check.max_events);
  if cfg.key_space < 1 || 2 * cfg.key_space > Lin_check.max_key then
    invalid_arg
      (Printf.sprintf "check: key_space must be in [1, %d]"
         (Lin_check.max_key / 2));
  if not (Workload.Targets.supports cfg.structure cfg.provider) then
    invalid_arg
      (Printf.sprintf "check: %s does not support the %s provider"
         cfg.structure
         (Workload.Targets.ts_name cfg.provider))

let run_round cfg ~round_seed =
  let inst =
    Workload.Targets.instance ~reclaim:cfg.reclaim cfg.structure cfg.provider
  in
  let (module S) = inst.Workload.Targets.structure in
  let t = S.create () in
  let prefill_rng = Dstruct.Prng.make ~seed:(mix round_seed 0) in
  let initial =
    List.filter
      (fun k -> S.insert t k)
      (List.init cfg.prefill (fun _ ->
           1 + Dstruct.Prng.below prefill_rng cfg.key_space))
  in
  (* The prefilling domain never operates again: leave its slot's grace
     participation, or QSBR rounds would retain every retirement. *)
  S.offline t;
  let recorder = Recorder.create ~now:inst.Workload.Targets.now ~domains:cfg.domains in
  let worker me =
    let rng = Dstruct.Prng.make ~seed:(mix round_seed (me + 1)) in
    for _ = 1 to cfg.ops_per_domain do
      let key () = 1 + Dstruct.Prng.below rng cfg.key_space in
      (* weights: updates dominate so snapshots have races to catch; the
         multi arms only widen the draw when enabled, so multi-less
         configs (and every pre-existing fixture) replay verbatim *)
      ignore
        (match Dstruct.Prng.below rng (if cfg.multi then 10 else 8) with
        | 0 | 1 | 2 ->
          let k = key () in
          Recorder.run recorder ~dom:me (Lin_check.Insert k) (fun () ->
              (Lin_check.Bool (S.insert t k), None))
        | 3 | 4 ->
          let k = key () in
          Recorder.run recorder ~dom:me (Lin_check.Delete k) (fun () ->
              (Lin_check.Bool (S.delete t k), None))
        | 5 ->
          let k = key () in
          Recorder.run recorder ~dom:me (Lin_check.Contains k) (fun () ->
              (Lin_check.Bool (S.contains t k), None))
        | 6 | 7 ->
          let lo = key () in
          let hi = lo + Dstruct.Prng.below rng cfg.key_space in
          Recorder.run recorder ~dom:me (Lin_check.Range (lo, hi)) (fun () ->
              let ts, keys = S.range_query_labeled t ~lo ~hi in
              (Lin_check.Keys keys, Some ts))
        | 8 ->
          (* 2-4 membership probes against ONE snapshot handle; every
             constituent must answer from the cut named by the one label *)
          let ks =
            List.init (2 + Dstruct.Prng.below rng 3) (fun _ -> key ())
          in
          Recorder.run recorder ~dom:me (Lin_check.Multi_get ks) (fun () ->
              Hwts_snapshot.with_snapshot (module S) t (fun snap ->
                  let bs = Hwts_snapshot.multi_get snap (Array.of_list ks) in
                  ( Lin_check.Bools (Array.to_list bs),
                    Some (Hwts_snapshot.label snap) )))
        | _ ->
          (* 1-2 range scans against ONE snapshot handle *)
          let rgs =
            List.init
              (1 + Dstruct.Prng.below rng 2)
              (fun _ ->
                let lo = key () in
                (lo, lo + Dstruct.Prng.below rng cfg.key_space))
          in
          Recorder.run recorder ~dom:me (Lin_check.Multi_range rgs) (fun () ->
              Hwts_snapshot.with_snapshot (module S) t (fun snap ->
                  let kss =
                    Hwts_snapshot.multi_range snap (Array.of_list rgs)
                  in
                  ( Lin_check.Keyss (Array.to_list kss),
                    Some (Hwts_snapshot.label snap) ))));
      (* Op boundary = quiescence point: the densest announcement cadence
         a QSBR user can run, so grace races get maximal exercise. *)
      S.quiesce t
    done;
    S.offline t
  in
  if cfg.faults then
    Sync.Pause.enable ~period:cfg.fault_period ~seed:round_seed ();
  (* Backoff jitter comes from the seeded Sync.Rand stream: reseeding per
     round keeps the whole round a function of [round_seed]. *)
  Sync.Rand.set_seed round_seed;
  Fun.protect
    ~finally:(fun () -> if cfg.faults then Sync.Pause.disable ())
    (fun () ->
      let workers =
        List.init cfg.domains (fun i ->
            Domain.spawn (fun () -> Sync.Slot.with_slot (fun _ -> worker i)))
      in
      (match inst.Workload.Targets.adaptive with
      | None -> ()
      | Some ctl ->
        (* A few dozen ops per domain never trips the contention sensor on
           its own, so for the adaptive provider the coordinator force-
           migrates the clock around the whole zoo while the workers run:
           the recorded histories then span live folds across every mode
           pair the ladder can produce (each rung to the next, plus the
           full-drop tsc->logical seam), which is exactly where a
           label-monotonicity bug would surface as an oracle violation. *)
        let tour =
          [| `Logical; `Delayed; `Multislot; `Tl2; `Tsc; `Logical; `Tsc;
             `Delayed; `Tl2; `Multislot |]
        in
        for i = 0 to 23 do
          ignore (ctl.Hwts.Timestamp.force tour.(i mod Array.length tour));
          let until = Tsc.rdtscp () + 20_000 in
          while Tsc.rdtscp () < until do
            Tsc.cpu_relax ()
          done
        done);
      List.iter Domain.join workers);
  (initial, Recorder.events recorder)

let order_of cfg =
  Hwts.Labeling.order_of_provider (Workload.Targets.ts_name cfg.provider)

let run ?(log = fun (_ : string) -> ()) cfg =
  validate cfg;
  let order = order_of cfg in
  let injected0 = Sync.Pause.injected () in
  let events_total = ref 0 in
  let rounds_run = ref 0 in
  let failure = ref None in
  (try
     for round = 1 to cfg.rounds do
       incr rounds_run;
       let round_seed = mix cfg.seed round in
       let initial, events = run_round cfg ~round_seed in
       events_total := !events_total + List.length events;
       match Oracle.verify ~initial ~order events with
       | Oracle.Pass ->
         log
           (Printf.sprintf "%s/%s round %d/%d ok (%d events)" cfg.structure
              (Workload.Targets.ts_name cfg.provider)
              round cfg.rounds (List.length events))
       | Oracle.Violation { events; minimized } ->
         (* replay the same round: a deterministic failure reproduces, a
            racy one may not — either way the history above is real *)
         let initial', events' = run_round cfg ~round_seed in
         let reproduced =
           match Oracle.verify ~initial:initial' ~order events' with
           | Oracle.Violation _ -> true
           | Oracle.Pass -> false
         in
         failure :=
           Some { round; round_seed; initial; events; minimized; reproduced };
         raise_notrace Exit
     done
   with Exit -> ());
  {
    config = cfg;
    rounds_run = !rounds_run;
    events_total = !events_total;
    faults_injected = Sync.Pause.injected () - injected0;
    failure = !failure;
  }

(* ---------- trace artifacts ---------- *)

let trace_header = "# hwts-check trace"

let trace_path cfg =
  Printf.sprintf "check-%s-%s-seed%d.trace" cfg.structure
    (Workload.Targets.ts_name cfg.provider)
    cfg.seed

let reclaim_tag cfg =
  (* only tagged when off the default, so pre-existing fixtures and their
     readers keep working verbatim *)
  if cfg.reclaim = `Ebr then ""
  else " reclaim=" ^ Workload.Targets.reclaim_name cfg.reclaim

let multi_tag cfg = if cfg.multi then " multi=true" else ""

let write_trace ~path cfg f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\n" trace_header;
      Printf.fprintf oc
        "structure=%s provider=%s%s%s seed=%d round=%d round_seed=%d \
         domains=%d ops_per_domain=%d key_space=%d faults=%b \
         fault_period=%d reproduced=%b\n"
        cfg.structure
        (Workload.Targets.ts_name cfg.provider)
        (reclaim_tag cfg) (multi_tag cfg) cfg.seed f.round f.round_seed
        cfg.domains cfg.ops_per_domain cfg.key_space cfg.faults
        cfg.fault_period f.reproduced;
      Printf.fprintf oc "\nfull history (%d events):\n%s"
        (List.length f.events)
        (Oracle.explain ~initial:f.initial f.events);
      Printf.fprintf oc "\nminimized counterexample (%d events):\n%s"
        (List.length f.minimized)
        (Oracle.explain ~initial:f.initial f.minimized))

(* ---------- replayable fixtures ----------

   A fixture is a checked-in trace artifact recording one *passing*
   seeded round: the config line carries everything [run_round] needs
   (including [prefill], which failure traces omit — their replay goes
   through [run]), and the history below it documents what the round
   looked like when it was recorded.  [read_fixture] parses the config
   back, so a regression test can re-run the exact round and re-verify
   it with the oracle — the whole workload, fault schedule and provider
   tour being functions of [round_seed]. *)

let write_fixture ~path cfg ~round_seed ~initial ~events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\n" trace_header;
      Printf.fprintf oc
        "fixture=true structure=%s provider=%s%s%s seed=%d round_seed=%d \
         domains=%d ops_per_domain=%d key_space=%d prefill=%d faults=%b \
         fault_period=%d\n"
        cfg.structure
        (Workload.Targets.ts_name cfg.provider)
        (reclaim_tag cfg) (multi_tag cfg) cfg.seed round_seed cfg.domains
        cfg.ops_per_domain cfg.key_space cfg.prefill cfg.faults
        cfg.fault_period;
      Printf.fprintf oc "\nrecorded history (%d events, oracle: pass):\n%s"
        (List.length events)
        (Oracle.explain ~initial events))

let read_fixture path =
  let parse_line line =
    let kv = Hashtbl.create 16 in
    List.iter
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
          Hashtbl.replace kv
            (String.sub tok 0 i)
            (String.sub tok (i + 1) (String.length tok - i - 1))
        | None -> ())
      (String.split_on_char ' ' line);
    let str k = Hashtbl.find_opt kv k in
    let int k = Option.bind (str k) int_of_string_opt in
    let bool k = Option.bind (str k) bool_of_string_opt in
    (* absent in fixtures recorded before the reclaim axis: default ebr *)
    let reclaim =
      match Option.bind (str "reclaim") Workload.Targets.reclaim_of_name with
      | Some r -> r
      | None -> `Ebr
    in
    (* absent in fixtures recorded before the multi-point axis: off *)
    let multi = Option.value (bool "multi") ~default:false in
    match
      ( str "structure",
        Option.bind (str "provider") Workload.Targets.ts_of_name,
        int "seed", int "round_seed", int "domains", int "ops_per_domain",
        int "key_space", int "prefill", bool "faults", int "fault_period" )
    with
    | ( Some structure, Some provider, Some seed, Some round_seed,
        Some domains, Some ops_per_domain, Some key_space, Some prefill,
        Some faults, Some fault_period ) ->
      Ok
        ( {
            structure; provider; reclaim; seed;
            rounds = 1;
            domains; ops_per_domain; key_space; prefill; faults; fault_period;
            multi;
          },
          round_seed )
    | _ -> Error (path ^ ": incomplete fixture config line")
  in
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (* sequence the reads explicitly: tuple components evaluate
           right-to-left, which would swap the two lines *)
        match
          let header = input_line ic in
          let config_line = input_line ic in
          (header, config_line)
        with
        | exception End_of_file -> Error (path ^ ": truncated fixture")
        | header, config_line ->
          if header <> trace_header then
            Error (path ^ ": not a check trace artifact")
          else if
            not
              (String.length config_line >= 12
              && String.sub config_line 0 12 = "fixture=true")
          then Error (path ^ ": not a fixture (failure traces replay via run)")
          else parse_line config_line)
