(** Offline snapshot oracle over recorded histories.

    [verify] decides whether a history is explainable as a sequential
    integer-set execution in which every labeled range query takes effect
    exactly at its claimed snapshot timestamp (the criterion {!Lin_check}
    implements), and on failure ships a minimized counterexample. *)

type verdict =
  | Pass
  | Violation of {
      events : Lin_check.event list;  (** the full failing history *)
      minimized : Lin_check.event list;
          (** small failing sub-history whose last-completing event is
              the first observation inconsistent with the rest *)
    }

val verify :
  ?initial:int list ->
  ?order:Hwts.Labeling.label_order ->
  Lin_check.event list ->
  verdict
(** [initial] is the prefilled abstract set contents; [order] the
    provider's label comparator (see {!Lin_check.check}). *)

val minimize :
  ?initial:int list ->
  ?order:Hwts.Labeling.label_order ->
  Lin_check.event list ->
  Lin_check.event list
(** Minimal failing prefix (in completion order), then greedy
    single-event shrinking with the prefix's final event pinned — the
    first inconsistent observation always survives into the core.
    Returns the input unchanged if it already passes. *)

val explain : ?initial:int list -> Lin_check.event list -> string
(** Human-readable trace, one event per line, ticks rebased to the
    earliest invocation. *)
