(** Per-domain history recorder for the snapshot oracle.

    Recording is synchronization-free: each domain owns a log cell and
    only the post-join merge reads them.  Stamp intervals with the
    structure's own timestamp provider so range-query labels and event
    intervals share one clock (see {!Workload.Targets.instance}). *)

type t

val create : now:(unit -> int) -> domains:int -> t
(** [create ~now ~domains] prepares one log per worker domain; [now] is
    read twice around every operation. *)

val run :
  t ->
  dom:int ->
  Lin_check.op ->
  (unit -> Lin_check.result * int option) ->
  Lin_check.result
(** [run t ~dom op thunk] stamps the invocation tick, runs [thunk]
    (which performs the operation and returns its observed result plus,
    for range queries, the claimed snapshot label), stamps the response
    tick, appends the event to domain [dom]'s log, and returns the
    result.  Must only be called from the domain that owns [dom]. *)

val events : t -> Lin_check.event list
(** Merged history.  Call only after every recording domain was joined. *)

val total : t -> int
