(* Per-domain history recorder.

   Each domain appends to its own log cell — no synchronization on the
   recording path, so instrumentation perturbs the schedule as little as
   possible.  Logs are merged after the worker domains have been joined
   (the join is the only publication point the merge relies on).

   Intervals are stamped with the clock handed to [create]: for recorded
   structure histories that must be the structure's own timestamp
   provider ([Workload.Targets.instance.now]), so the invocation/response
   ticks and the labels claimed by range queries are values of one clock
   and the oracle may compare them. *)

type t = {
  now : unit -> int;
  logs : Lin_check.event list ref array;
}

let create ~now ~domains =
  { now; logs = Array.init domains (fun _ -> ref []) }

let run t ~dom op thunk =
  let start_t = t.now () in
  let result, label = thunk () in
  let end_t = t.now () in
  let cell = t.logs.(dom) in
  cell := { Lin_check.start_t; end_t; op; result; label } :: !cell;
  result

let events t =
  Array.fold_left (fun acc cell -> List.rev_append !cell acc) [] t.logs

let total t = Array.fold_left (fun n cell -> n + List.length !cell) 0 t.logs
