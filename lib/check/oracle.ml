(* Offline snapshot oracle: merge a recorded history, decide whether it
   is explainable as a sequential set execution (with every labeled range
   query linearized at its claimed label), and on failure shrink the
   history to a small counterexample a human can read. *)

type verdict =
  | Pass
  | Violation of {
      events : Lin_check.event list;
      minimized : Lin_check.event list;
    }

let by_start e1 e2 = compare e1.Lin_check.start_t e2.Lin_check.start_t

(* Shrink in two steps.  First find the minimal failing *prefix* in
   completion order: its last event is the first observation inconsistent
   with everything that completed before — the honest culprit.  Then
   greedily drop any other single event whose removal keeps the prefix
   failing, but never the culprit: unpinned delta-debugging can discard a
   supporting update and manufacture a smaller failure with a different
   cause, which reads as a misdiagnosis.  Quadratic in history size,
   bounded by [Lin_check.max_events]. *)
let minimize ?initial ?order events =
  let fails evs = not (Lin_check.check ?initial ?order evs) in
  if not (fails events) then events
  else
    let by_end e1 e2 = compare e1.Lin_check.end_t e2.Lin_check.end_t in
    let failing_prefix evs =
      let rec grow acc = function
        | [] -> List.rev acc
        | e :: rest ->
          let acc = e :: acc in
          if fails (List.rev acc) then List.rev acc else grow acc rest
      in
      grow [] (List.stable_sort by_end evs)
    in
    let prefix = failing_prefix events in
    match List.rev prefix with
    | [] -> []
    | culprit :: _ ->
      (* Only accept a removal that keeps the *same* event as the first
         inconsistent observation: dropping e.g. a supporting insert
         manufactures a fresh failure with an earlier culprit, which the
         prefix recomputation detects and rejects. *)
      let still_culprit cand =
        match List.rev (failing_prefix cand) with
        | c :: _ -> c == culprit
        | [] -> false
      in
      let rec shrink evs =
        let n = List.length evs in
        let arr = Array.of_list evs in
        let rec try_drop i =
          if i >= n then evs
          else if arr.(i) == culprit then try_drop (i + 1)
          else
            let cand = List.filteri (fun j _ -> j <> i) evs in
            if fails cand && still_culprit cand then shrink cand
            else try_drop (i + 1)
        in
        try_drop 0
      in
      shrink prefix

let verify ?initial ?order events =
  let events = List.sort by_start events in
  if Lin_check.check ?initial ?order events then Pass
  else Violation { events; minimized = minimize ?initial ?order events }

(* ---------- rendering ---------- *)

let string_of_op = function
  | Lin_check.Insert k -> Printf.sprintf "insert(%d)" k
  | Lin_check.Delete k -> Printf.sprintf "delete(%d)" k
  | Lin_check.Contains k -> Printf.sprintf "contains(%d)" k
  | Lin_check.Range (lo, hi) -> Printf.sprintf "range(%d,%d)" lo hi
  | Lin_check.Multi_get ks ->
    "multi_get(" ^ String.concat "," (List.map string_of_int ks) ^ ")"
  | Lin_check.Multi_range rgs ->
    "multi_range("
    ^ String.concat ";"
        (List.map (fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi) rgs)
    ^ ")"

let keyset ks = "{" ^ String.concat "," (List.map string_of_int ks) ^ "}"

let string_of_result = function
  | Lin_check.Bool b -> string_of_bool b
  | Lin_check.Keys ks -> keyset ks
  | Lin_check.Bools rs ->
    "[" ^ String.concat "," (List.map string_of_bool rs) ^ "]"
  | Lin_check.Keyss kss -> "[" ^ String.concat ";" (List.map keyset kss) ^ "]"

let pp_event base e =
  let label =
    match e.Lin_check.label with
    | None -> ""
    | Some l -> Printf.sprintf " @%d" (l - base)
  in
  Printf.sprintf "[%d..%d] %s -> %s%s"
    (e.Lin_check.start_t - base)
    (e.Lin_check.end_t - base)
    (string_of_op e.Lin_check.op)
    (string_of_result e.Lin_check.result)
    label

(* Ticks are rebased to the earliest invocation so traces show small
   offsets instead of raw 50-bit TSC values. *)
let explain ?(initial = []) events =
  let events = List.sort by_start events in
  let base =
    List.fold_left
      (fun b e -> min b e.Lin_check.start_t)
      max_int events
  in
  let base = if base = max_int then 0 else base in
  let buf = Buffer.create 256 in
  if initial <> [] then
    Buffer.add_string buf
      ("initial: {"
      ^ String.concat "," (List.map string_of_int (List.sort compare initial))
      ^ "}\n");
  List.iter
    (fun e ->
      Buffer.add_string buf (pp_event base e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf
