(* A small linearizability checker for integer-set histories.

   Events carry real-time intervals stamped with a timestamp provider
   (the fenced TSC, or the structure's own clock when histories come from
   the recorder); the checker searches for a total order that (1)
   respects real-time precedence (e1 before e2 iff e1 ended before e2
   began), and (2) is a legal sequential set execution producing exactly
   the observed results.

   Range events carry the full observed result set and, optionally, the
   timestamp label the structure claimed for the snapshot.  A labeled
   range is required to linearize *at its label*: the event's effective
   interval collapses to [label, label], which is the snapshot-at-
   timestamp criterion — the query must see exactly the abstract set
   contents at the instant it advertised.  A label outside the query's
   real-time interval is rejected outright.

   Wing–Gong style DFS with memoization.  Histories are limited to 62
   events (bitmask) and keys to [0, 61] (set state is a bitmask too). *)

type op =
  | Insert of int
  | Delete of int
  | Contains of int
  | Range of int * int
  | Multi_get of int list
  | Multi_range of (int * int) list

type result = Bool of bool | Keys of int list | Bools of bool list | Keyss of int list list

type event = {
  start_t : int;
  end_t : int;
  op : op;
  result : result;
  label : int option;  (* Range only: the claimed snapshot timestamp *)
}

let max_events = 62
let max_key = 61

let ev ?label start_t end_t op result = { start_t; end_t; op; result; label }

let mask_of_keys keys = List.fold_left (fun m k -> m lor (1 lsl k)) 0 keys

let range_mask lo hi =
  let lo = max lo 0 and hi = min hi max_key in
  if hi < lo then 0 else ((1 lsl (hi - lo + 1)) - 1) lsl lo

(* Membership as the abstract set answers it for ANY integer: keys the
   bitmask cannot represent are simply never members (the engine returns
   [false] for out-of-window keys, and the checker agrees). *)
let mem state k = k >= 0 && k <= max_key && state land (1 lsl k) <> 0

(* Whether a sequential set in [state] could return [result] for [op],
   and the state afterwards.  A multi-point op is ONE event: every
   constituent probe answers against the same [state], which is exactly
   the one-cut-per-handle guarantee the snapshot engine advertises. *)
let step state op result =
  match (op, result) with
  | Insert k, Bool r ->
    let bit = 1 lsl k in
    if state land bit <> 0 then (r = false, state)
    else (r = true, state lor bit)
  | Delete k, Bool r ->
    let bit = 1 lsl k in
    if state land bit = 0 then (r = false, state)
    else (r = true, state lxor bit)
  | Contains k, Bool r -> (r = (state land (1 lsl k) <> 0), state)
  | Range (lo, hi), Keys ks ->
    (state land range_mask lo hi = mask_of_keys ks, state)
  | Multi_get ks, Bools rs ->
    ( List.length ks = List.length rs
      && List.for_all2 (fun k r -> r = mem state k) ks rs,
      state )
  | Multi_range rgs, Keyss kss ->
    ( List.length rgs = List.length kss
      && List.for_all2
           (fun (lo, hi) ks ->
             List.for_all (fun k -> k >= 0 && k <= max_key) ks
             && state land range_mask lo hi = mask_of_keys ks)
           rgs kss,
      state )
  | (Insert _ | Delete _ | Contains _ | Range _ | Multi_get _ | Multi_range _),
    _ ->
    (false, state)

(* Every constituent of one multi-point event answers from the same cut,
   so within an event the answers must agree wherever probes overlap:
   duplicate multi_get keys, and any key shared by two range windows.
   The interval DFS alone can miss this (an update whose recorded
   interval brackets the label could otherwise slot between two
   same-label probes), so it is enforced structurally, per event. *)
let self_consistent e =
  match (e.op, e.result) with
  | Multi_get ks, Bools rs when List.length ks = List.length rs ->
    let seen = Hashtbl.create 8 in
    List.for_all2
      (fun k r ->
        match Hashtbl.find_opt seen k with
        | Some r' -> r = r'
        | None ->
          Hashtbl.add seen k r;
          true)
      ks rs
  | Multi_range rgs, Keyss kss when List.length rgs = List.length kss ->
    let seen = Hashtbl.create 8 in
    List.for_all2
      (fun (lo, hi) ks ->
        let lo = max lo 0 and hi = min hi max_key in
        let ok = ref true in
        for k = lo to hi do
          let r = List.mem k ks in
          match Hashtbl.find_opt seen k with
          | Some r' -> if r <> r' then ok := false
          | None -> Hashtbl.add seen k r
        done;
        !ok)
      rgs kss
  | _ -> true (* shape mismatches are rejected by [step] *)

(* A label must name an instant the query actually spanned; anything else
   is an unsatisfiable claim (or a malformed history) and the whole
   history is rejected.  Comparison goes through the provider's
   [Labeling.label_order]: TL2-style stamps tie across a whole epoch, so
   a label can sit numerically below the start tick by id bits alone. *)
let well_labeled ~order e =
  let cmp = order.Hwts.Labeling.compare_labels in
  match (e.op, e.label) with
  | (Range _ | Multi_get _ | Multi_range _), Some l ->
    cmp e.start_t l <= 0 && cmp l e.end_t <= 0
  | (Range _ | Multi_get _ | Multi_range _), None -> true
  | _, Some _ -> false
  | _, None -> true

let effective e =
  match (e.op, e.label) with
  | (Range _ | Multi_get _ | Multi_range _), Some l -> (l, l)
  | _ -> (e.start_t, e.end_t)

(* Timestamped events own an instant on the clock axis: a successful
   update's label lies inside its recorded interval, a labeled range sits
   exactly at its label.  Reads (contains, failed updates, unlabeled
   ranges) never touch the clock — their recorded ticks bound their real
   time but say nothing about where they fall in timestamp order. *)
let is_timestamped e =
  match (e.op, e.result) with
  | (Insert _ | Delete _), Bool true -> true
  | (Range _ | Multi_get _ | Multi_range _), _ -> e.label <> None
  | _ -> false

(* Joint Wing–Gong DFS over the whole history; assumes [well_labeled].

   Precedence is pairwise: two timestamped events compare by their
   label-bracketing intervals (collapsed to [label, label] for labeled
   ranges), while any pair involving a read compares by raw recorded
   intervals (clock reads are monotone, so tick precedence implies
   real-time precedence).  Pinning reads onto the clock axis would be
   unsound: a read can linearize before an update whose label it never
   interacted with, even when its ticks postdate that label. *)
let check_dfs ?(initial = []) ?(order = Hwts.Labeling.raw_order) events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  assert (n <= max_events);
  let pinned = Array.map effective arr in
  let ts_flag = Array.map is_timestamped arr in
  let cmp = order.Hwts.Labeling.compare_labels in
  let prec j i =
    if ts_flag.(j) && ts_flag.(i) then cmp (snd pinned.(j)) (fst pinned.(i)) < 0
    else arr.(j).end_t < arr.(i).start_t
  in
  let state0 = List.fold_left (fun s k -> s lor (1 lsl k)) 0 initial in
  let full = if n = 0 then 0 else (1 lsl n) - 1 in
  let memo = Hashtbl.create 4096 in
  let rec dfs remaining state =
    if remaining = 0 then true
    else if Hashtbl.mem memo (remaining, state) then false
    else begin
      Hashtbl.add memo (remaining, state) ();
      let unpreceded i =
        let ok = ref true in
        for j = 0 to n - 1 do
          if !ok && j <> i && remaining land (1 lsl j) <> 0 && prec j i then
            ok := false
        done;
        !ok
      in
      let rec try_candidates i =
        if i >= n then false
        else if
          remaining land (1 lsl i) <> 0
          && unpreceded i
          &&
          let matches, state' = step state arr.(i).op arr.(i).result in
          matches && dfs (remaining lxor (1 lsl i)) state'
        then true
        else try_candidates (i + 1)
      in
      try_candidates 0
    end
  in
  dfs full state0

(* When every range and multi-point op is labeled, the criterion
   decomposes per key: a labeled range (or one multi-point constituent)
   is a batch of zero-width membership probes, one per window key, all
   pinned at the label instant.  Point ops touch one key each, so by
   linearizability's locality the joint history is explainable iff every
   per-key projection is.  Checking 62 two-state sub-histories sidesteps
   the joint DFS's exponential blowup on heavily-overlapped histories
   (fault injection freezes the clock while ops pile up at the same
   tick). *)
let decomposable events =
  List.for_all
    (fun e ->
      match (e.op, e.result, e.label) with
      | (Insert k | Delete k | Contains k), Bool _, None ->
        k >= 0 && k <= max_key
      | Range (lo, hi), Keys ks, Some _ ->
        List.for_all (fun k -> k >= lo && k <= hi && k >= 0 && k <= max_key) ks
      | Multi_get ks, Bools rs, Some _ ->
        List.length ks = List.length rs
        && List.for_all (fun k -> k >= 0 && k <= max_key) ks
      | Multi_range rgs, Keyss kss, Some _ ->
        List.length rgs = List.length kss
        && List.for_all2
             (fun (lo, hi) ks ->
               List.for_all
                 (fun k -> k >= lo && k <= hi && k >= 0 && k <= max_key)
                 ks)
             rgs kss
      | _ -> false)
    events

(* A labeled range projects onto key [k] as a single-key labeled range
   (not a contains): it keeps the raw interval for real-time ordering
   against reads AND the label for timestamp ordering against updates.
   A multi-point op projects as one such probe per constituent touching
   [k] — all pinned at the handle's single label, which is precisely the
   "every read answers from one cut" claim under test. *)
let project k events =
  let probe e present =
    { e with op = Range (k, k); result = Keys (if present then [ k ] else []) }
  in
  List.concat_map
    (fun e ->
      match (e.op, e.label) with
      | (Insert k' | Delete k' | Contains k'), _ ->
        if k' = k then [ e ] else []
      | Range (lo, hi), Some _ ->
        if k >= lo && k <= hi then
          let present =
            match e.result with Keys ks -> List.mem k ks | _ -> false
          in
          [ probe e present ]
        else []
      | Multi_get ks, Some _ ->
        let rs = match e.result with Bools rs -> rs | _ -> [] in
        List.concat
          (List.map2
             (fun k' r -> if k' = k then [ probe e r ] else [])
             ks rs)
      | Multi_range rgs, Some _ ->
        let kss = match e.result with Keyss kss -> kss | _ -> [] in
        List.concat
          (List.map2
             (fun (lo, hi) ks ->
               if k >= lo && k <= hi then [ probe e (List.mem k ks) ] else [])
             rgs kss)
      | (Range _ | Multi_get _ | Multi_range _), None ->
        assert false (* decomposable implies labeled *))
    events

let check_per_key ~initial ~order events =
  let state0 = List.fold_left (fun s k -> s lor (1 lsl k)) 0 initial in
  let key_mask =
    List.fold_left
      (fun m e ->
        match e.op with
        | Insert k | Delete k | Contains k -> m lor (1 lsl k)
        | Range (lo, hi) -> m lor range_mask lo hi
        | Multi_get ks ->
          (* decomposable already bounded every key *)
          List.fold_left (fun m k -> m lor (1 lsl k)) m ks
        | Multi_range rgs ->
          List.fold_left (fun m (lo, hi) -> m lor range_mask lo hi) m rgs)
      0 events
  in
  let ok = ref true in
  for k = 0 to max_key do
    if !ok && key_mask land (1 lsl k) <> 0 then
      match project k events with
      | [] -> ()
      | sub ->
        let initial = if state0 land (1 lsl k) <> 0 then [ k ] else [] in
        ok := check_dfs ~initial ~order sub
  done;
  !ok

let check ?(initial = []) ?(order = Hwts.Labeling.raw_order) events =
  List.for_all (well_labeled ~order) events
  && List.for_all self_consistent events
  &&
  if decomposable events then check_per_key ~initial ~order events
  else check_dfs ~initial ~order events

let spawn_workers n body =
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () -> Sync.Slot.with_slot (fun _ -> body i)))
  in
  List.map Domain.join domains

(* Record a multi-domain history against a structure with elemental ops. *)
let record_history ~domains ~ops_per_domain ~key_space ~seed ~insert ~delete
    ~contains =
  assert (domains * ops_per_domain <= max_events);
  assert (key_space <= max_events);
  let histories =
    spawn_workers domains (fun me ->
        let rng = Dstruct.Prng.make ~seed:(seed + (me * 101)) in
        List.init ops_per_domain (fun _ ->
            let k = Dstruct.Prng.below rng key_space in
            let op =
              match Dstruct.Prng.below rng 3 with
              | 0 -> Insert k
              | 1 -> Delete k
              | _ -> Contains k
            in
            let start_t = Tsc.rdtscp_lfence () in
            let result =
              match op with
              | Insert k -> insert k
              | Delete k -> delete k
              | Contains k -> contains k
              | Range _ | Multi_get _ | Multi_range _ ->
                assert false (* not generated here *)
            in
            let end_t = Tsc.rdtscp_lfence () in
            { start_t; end_t; op; result = Bool result; label = None }))
  in
  List.concat histories
