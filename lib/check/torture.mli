(** Seeded torture driver: randomized multi-domain workloads under fault
    injection, verified by the snapshot {!Oracle}.

    Every round derives its schedule — prefill, per-domain op streams,
    and the fault-injection stream ({!Sync.Pause}) — from one seed, so a
    reported failure can be replayed.  Histories are recorded with the
    structure's own timestamp provider so claimed range-query labels are
    comparable with event intervals. *)

type config = {
  structure : string;  (** a {!Workload.Targets.all} name *)
  provider : Workload.Targets.ts;
  reclaim : Workload.Targets.reclaim;
      (** reclamation backend for {!Workload.Targets.reclaim_sensitive}
          structures; the others ignore it *)
  seed : int;
  rounds : int;
  domains : int;
  ops_per_domain : int;  (** [domains * ops_per_domain <= Lin_check.max_events] *)
  key_space : int;  (** keys drawn from [1, key_space] *)
  prefill : int;  (** keys inserted (and recorded as initial state) before workers start *)
  faults : bool;  (** enable {!Sync.Pause} injection during rounds *)
  fault_period : int;  (** inject at roughly 1-in-[fault_period] pause points *)
  multi : bool;
      (** also draw multi-point snapshot ops: multi_gets and multi_ranges
          issued through one {!Hwts_snapshot.t} handle each, recorded as
          single events carrying the handle's one label.  Off by default
          so pre-existing fixtures replay with an identical op stream. *)
}

type failure = {
  round : int;
  round_seed : int;
  initial : int list;
  events : Lin_check.event list;
  minimized : Lin_check.event list;
  reproduced : bool;
      (** whether replaying the round with the same seed failed again *)
}

type outcome = {
  config : config;
  rounds_run : int;
  events_total : int;
  faults_injected : int;
  failure : failure option;  (** [None] = every round passed the oracle *)
}

val default_config :
  ?reclaim:Workload.Targets.reclaim ->
  ?multi:bool ->
  structure:string ->
  provider:Workload.Targets.ts ->
  seed:int ->
  unit ->
  config
(** 12 rounds x 4 domains x 12 ops over keys [1, 12], prefill 4, faults
    on at period 4, EBR reclamation, multi-point ops off. *)

val run : ?log:(string -> unit) -> config -> outcome
(** Runs rounds until one fails the oracle or all pass.  Raises
    [Invalid_argument] for configs exceeding checker capacity or naming
    an unsupported structure/provider pair. *)

val run_round : config -> round_seed:int -> int list * Lin_check.event list
(** One seeded round: build the structure, prefill, run the recorded
    workload (with the adaptive provider's forced zoo tour when the
    provider is adaptive), return the initial state and merged history.
    Exposed so fixtures can be generated and replayed round-by-round. *)

val order_of : config -> Hwts.Labeling.label_order
(** The label comparator the oracle must use for this config's provider
    ({!Hwts.Labeling.order_of_provider}). *)

val trace_header : string
(** First line of every trace artifact (lets tooling recognize them). *)

val trace_path : config -> string
(** Conventional artifact name: [check-<structure>-<provider>-seed<N>.trace]. *)

val write_trace : path:string -> config -> failure -> unit

val write_fixture :
  path:string ->
  config ->
  round_seed:int ->
  initial:int list ->
  events:Lin_check.event list ->
  unit
(** Write a *passing* round as a replayable fixture: same header as
    failure traces, but the config line carries [fixture=true] and every
    field {!run_round} needs (failure traces omit [prefill]). *)

val read_fixture : string -> (config * int, string) result
(** Parse a fixture back into the config and round seed to replay
    ([config.rounds] is 1).  [Error] on failure traces and non-trace
    files. *)
