(* Per-op-class service metrics.  Latency is wall (monotonic ns) from
   routing to completion, so it includes queueing — the number a client
   of the service experiences, not just structure time. *)
let m_snapshots = Hwts_obs.Registry.counter "serve.rq.snapshots"
let m_rq_ops = Hwts_obs.Registry.counter "serve.rq.ops"
let m_rq_batch = Hwts_obs.Registry.histogram "serve.rq.batch"
let m_point_ops = Hwts_obs.Registry.counter "serve.point.ops"
let m_mget_ops = Hwts_obs.Registry.counter "serve.mget.ops"
let m_mget_frames = Hwts_obs.Registry.counter "serve.mget.frames"
let h_get = Hwts_obs.Registry.histogram "serve.latency.get"
let h_insert = Hwts_obs.Registry.histogram "serve.latency.insert"
let h_delete = Hwts_obs.Registry.histogram "serve.latency.delete"
let h_range = Hwts_obs.Registry.histogram "serve.latency.range"
let h_batch = Hwts_obs.Registry.histogram "serve.latency.batch"
let h_ping = Hwts_obs.Registry.histogram "serve.latency.ping"
let h_multiget = Hwts_obs.Registry.histogram "serve.latency.multiget"
let h_multirange = Hwts_obs.Registry.histogram "serve.latency.multirange"

type task =
  | Point of [ `Get | `Insert | `Delete ] * int * (Wire.response -> unit)
  | Sub of int * int * (int -> int list -> unit)
      (* one shard-local subrange; completion gets (label, keys) *)
  | MGet of int array * (int -> bool array -> unit)
      (* shard-local slice of a MultiGet; completion gets (label, bools),
         positionally matching the keys *)

type shard = {
  m : Mutex.t;
  c : Condition.t;
  q : task Queue.t;
  mutable stop : bool;
}

type t = {
  shards : shard array;
  span : int;
  key_space : int;
  coalesce : bool;
  structure_name : string;
  provider : string;
  reclaim_name : string;
  now : unit -> int;
  stopped : Mutex.t * bool ref;
  domains : unit Domain.t array;
}

(* Drain-everything batcher: run the drained tasks' point ops in arrival
   order (per-shard FIFO is part of the service contract), gather the
   drained subranges and multiget slices, and execute them under ONE
   snapshot acquisition when coalescing is on — the serving-layer form
   of the paper's many-ranges-per-timestamp kernel, generalized from
   ranges-only to every read-class task in the drain via a
   {!Hwts_snapshot.t} handle.  With coalescing off each task acquires
   for itself, which is the A arm of the experiment. *)
let process (type a) (module S : Dstruct.Ordered_set.RQ with type t = a)
    (st : a) ~coalesce (batch : task Queue.t) =
  let subs = ref [] and mgets = ref [] in
  Queue.iter
    (fun task ->
      match task with
      | Point (kind, key, k) ->
        Hwts_obs.Counter.incr m_point_ops;
        let r =
          match kind with
          | `Get -> S.contains st key
          | `Insert -> S.insert st key
          | `Delete -> S.delete st key
        in
        k (Wire.Bool r)
      | Sub (lo, hi, k) -> subs := (lo, hi, k) :: !subs
      | MGet (keys, k) ->
        Hwts_obs.Counter.incr m_mget_frames;
        Hwts_obs.Counter.add m_mget_ops (Array.length keys);
        mgets := (keys, k) :: !mgets)
    batch;
  Queue.clear batch;
  let subs = Array.of_list (List.rev !subs) in
  let mgets = Array.of_list (List.rev !mgets) in
  let n = Array.length subs in
  if n > 0 then begin
    Hwts_obs.Counter.add m_rq_ops n;
    Hwts_obs.Histogram.record m_rq_batch n
  end;
  if n = 0 && Array.length mgets = 0 then ()
  else if coalesce then begin
    Hwts_obs.Counter.incr m_snapshots;
    Hwts_snapshot.with_snapshot
      (module S)
      st
      (fun snap ->
        let label = Hwts_snapshot.label snap in
        Array.iter
          (fun (keys, k) -> k label (Hwts_snapshot.multi_get snap keys))
          mgets;
        Array.iter
          (fun (lo, hi, k) ->
            k label (Hwts_snapshot.range snap ~lo ~hi))
          subs)
  end
  else begin
    Array.iter
      (fun (keys, k) ->
        Hwts_obs.Counter.incr m_snapshots;
        Hwts_snapshot.with_snapshot
          (module S)
          st
          (fun snap ->
            k (Hwts_snapshot.label snap) (Hwts_snapshot.multi_get snap keys)))
      mgets;
    Array.iter
      (fun (lo, hi, k) ->
        Hwts_obs.Counter.incr m_snapshots;
        let label, keys = S.range_query_labeled st ~lo ~hi in
        k label keys)
      subs
  end

let worker (type a) (module S : Dstruct.Ordered_set.RQ with type t = a)
    (st : a) ~coalesce sh =
  let batch = Queue.create () in
  let rec loop () =
    Mutex.lock sh.m;
    while Queue.is_empty sh.q && not sh.stop do
      Condition.wait sh.c sh.m
    done;
    (* exit only once a lock-held check sees stop AND an empty queue, so
       every task enqueued before the stop flag is drained first *)
    let finished = sh.stop && Queue.is_empty sh.q in
    Queue.transfer sh.q batch;
    Mutex.unlock sh.m;
    process (module S) st ~coalesce batch;
    (* Batch boundary: the shard worker holds no reference into its
       structure between batches — a quiescence point for QSBR
       reclamation (and the only announcement it ever pays for). *)
    S.quiesce st;
    if not finished then loop ()
  in
  loop ();
  S.offline st

let create ?(reclaim = `Ebr) ~structure ~provider ~shards ~key_space ~coalesce
    () =
  if shards <= 0 then invalid_arg "Shards.create: shards must be positive";
  if key_space <= 0 then
    invalid_arg "Shards.create: key_space must be positive";
  (* ONE instance call = one provider module; [shards] creates on it
     share the clock (see the .mli). *)
  let inst = Workload.Targets.instance ~reclaim structure provider in
  let (module S) = inst.Workload.Targets.structure in
  let span = (key_space + shards - 1) / shards in
  let mk_shard () =
    {
      m = Mutex.create ();
      c = Condition.create ();
      q = Queue.create ();
      stop = false;
    }
  in
  let shard_arr = Array.init shards (fun _ -> mk_shard ()) in
  let domains =
    Array.map
      (fun sh ->
        let st = S.create () in
        Domain.spawn (fun () ->
            Sync.Slot.with_slot (fun _ -> worker (module S) st ~coalesce sh)))
      shard_arr
  in
  {
    shards = shard_arr;
    span;
    key_space;
    coalesce;
    structure_name = structure;
    provider = inst.Workload.Targets.provider;
    reclaim_name = inst.Workload.Targets.reclaim;
    now = inst.Workload.Targets.now;
    stopped = (Mutex.create (), ref false);
    domains;
  }

let structure_name t = t.structure_name
let provider t = t.provider
let reclaim t = t.reclaim_name
let shard_count t = Array.length t.shards
let key_space t = t.key_space
let coalesce t = t.coalesce
let now t = t.now ()

let enqueue t i task =
  let sh = t.shards.(i) in
  Mutex.lock sh.m;
  if sh.stop then begin
    Mutex.unlock sh.m;
    false
  end
  else begin
    Queue.push task sh.q;
    Condition.signal sh.c;
    Mutex.unlock sh.m;
    true
  end

let shard_of_key t key = (key - 1) / t.span

let class_hist = function
  | Wire.Get _ -> h_get
  | Wire.Insert _ -> h_insert
  | Wire.Delete _ -> h_delete
  | Wire.Range _ -> h_range
  | Wire.Batch _ -> h_batch
  | Wire.Ping -> h_ping
  | Wire.MultiGet _ -> h_multiget
  | Wire.MultiRange _ -> h_multirange

let rejected = Wire.Err "server stopping"

(* Fan a clamped [lo, hi] out to its owning shards; completion fires on
   the last part, with the maximal part label and the parts concatenated
   in shard order (shards partition the key space ascending, and each
   part is sorted, so the concatenation is the sorted union). *)
let submit_range t lo hi k =
  let lo = max lo 1 and hi = min hi t.key_space in
  if lo > hi then k (Wire.Keys (t.now (), [||]))
  else begin
    let s0 = shard_of_key t lo and s1 = shard_of_key t hi in
    if s0 = s1 then begin
      let fin label keys = k (Wire.Keys (label, Array.of_list keys)) in
      if not (enqueue t s0 (Sub (lo, hi, fin))) then k rejected
    end
    else begin
      let n = s1 - s0 + 1 in
      let parts = Array.make n [] in
      let labels = Array.make n 0 in
      let remaining = Atomic.make n in
      let finish_one idx label keys =
        parts.(idx) <- keys;
        labels.(idx) <- label;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          let label = Array.fold_left max min_int labels in
          let keys =
            Array.of_list (List.concat (Array.to_list parts))
          in
          k (Wire.Keys (label, keys))
        end
      in
      let aborted = ref false in
      for s = s0 to s1 do
        if not !aborted then begin
          let slo = max lo ((s * t.span) + 1) in
          let shi = min hi ((s + 1) * t.span) in
          if not (enqueue t s (Sub (slo, shi, finish_one (s - s0)))) then begin
            (* account for every shard not submitted, then fail the
               whole range exactly once through the normal completion *)
            aborted := true;
            let missing = s1 - s + 1 in
            if Atomic.fetch_and_add remaining (-missing) = missing then
              k rejected
            else () (* in-flight parts complete the count; response is
                       a partial Keys — acceptable only because stop
                       happens after connections are drained *)
          end
        end
      done
    end
  end

(* Fan a MultiGet out to the shards owning its in-range keys; out-of-range
   keys answer [false] without a submission (Get's semantics), positions
   are preserved, and the combined label is the maximum across the
   per-shard slice labels — comparable because the fleet shares one
   provider. *)
let submit_multiget t keys k =
  let nk = Array.length keys in
  if nk = 0 then k (Wire.Bools (t.now (), [||]))
  else begin
    let bools = Array.make nk false in
    let per_shard = Array.make (Array.length t.shards) [] in
    Array.iteri
      (fun i key ->
        if key >= 1 && key <= t.key_space then begin
          let s = shard_of_key t key in
          per_shard.(s) <- (i, key) :: per_shard.(s)
        end)
      keys;
    let groups =
      List.filter
        (fun (_, idxs) -> idxs <> [])
        (List.mapi
           (fun s idxs -> (s, List.rev idxs))
           (Array.to_list per_shard))
    in
    let ng = List.length groups in
    if ng = 0 then k (Wire.Bools (t.now (), bools))
    else begin
      let labels = Array.make ng 0 in
      let remaining = Atomic.make ng in
      let finish_one g idxs label bs =
        labels.(g) <- label;
        List.iteri (fun j (i, _) -> bools.(i) <- bs.(j)) idxs;
        if Atomic.fetch_and_add remaining (-1) = 1 then
          k (Wire.Bools (Array.fold_left max min_int labels, bools))
      in
      let aborted = ref false in
      List.iteri
        (fun g (s, idxs) ->
          if not !aborted then begin
            let ks = Array.of_list (List.map snd idxs) in
            if not (enqueue t s (MGet (ks, finish_one g idxs))) then begin
              aborted := true;
              let missing = ng - g in
              if Atomic.fetch_and_add remaining (-missing) = missing then
                k rejected
            end
          end)
        groups
    end
  end

(* Each range of a MultiRange reuses the Range fan-out; the frame
   completes when the last range does, under the maximal label. *)
let submit_multirange t submit_one ranges k =
  let nr = Array.length ranges in
  if nr = 0 then k (Wire.Keyss (t.now (), [||]))
  else begin
    let results = Array.make nr [||] in
    let labels = Array.make nr 0 in
    let remaining = Atomic.make nr in
    let failed = Atomic.make false in
    Array.iteri
      (fun i (lo, hi) ->
        submit_one t lo hi (fun resp ->
            (match resp with
            | Wire.Keys (label, keys) ->
              results.(i) <- keys;
              labels.(i) <- label
            | _ -> Atomic.set failed true);
            if Atomic.fetch_and_add remaining (-1) = 1 then
              if Atomic.get failed then k rejected
              else k (Wire.Keyss (Array.fold_left max min_int labels, results))))
      ranges
  end

let rec route t req k =
  let h = class_hist req in
  let t0 = Tsc.monotonic_ns () in
  let k r =
    Hwts_obs.Histogram.record h (Tsc.monotonic_ns () - t0);
    k r
  in
  match req with
  | Wire.Ping -> k Wire.Pong
  | Wire.Get key | Wire.Insert key | Wire.Delete key
    when key < 1 || key > t.key_space -> (
    match req with
    | Wire.Get _ -> k (Wire.Bool false)
    | _ -> k (Wire.Err (Printf.sprintf "key %d out of [1, %d]" key t.key_space))
    )
  | Wire.Get key ->
    if not (enqueue t (shard_of_key t key) (Point (`Get, key, k))) then
      k rejected
  | Wire.Insert key ->
    if not (enqueue t (shard_of_key t key) (Point (`Insert, key, k))) then
      k rejected
  | Wire.Delete key ->
    if not (enqueue t (shard_of_key t key) (Point (`Delete, key, k))) then
      k rejected
  | Wire.Range (lo, hi) -> submit_range t lo hi k
  | Wire.MultiGet keys -> submit_multiget t keys k
  | Wire.MultiRange ranges -> submit_multirange t submit_range ranges k
  | Wire.Batch reqs ->
    let n = Array.length reqs in
    if n = 0 then k (Wire.Rbatch [||])
    else begin
      let responses = Array.make n Wire.Pong in
      let remaining = Atomic.make n in
      Array.iteri
        (fun i sub ->
          route t sub (fun r ->
              responses.(i) <- r;
              if Atomic.fetch_and_add remaining (-1) = 1 then
                k (Wire.Rbatch responses)))
        reqs
    end

let submit = route

let exec t req =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  submit t req (fun r ->
      Mutex.lock m;
      slot := Some r;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  let r = Option.get !slot in
  Mutex.unlock m;
  r

let stop t =
  let sm, stopped = t.stopped in
  Mutex.lock sm;
  let first = not !stopped in
  stopped := true;
  Mutex.unlock sm;
  if first then begin
    Array.iter
      (fun sh ->
        Mutex.lock sh.m;
        sh.stop <- true;
        Condition.broadcast sh.c;
        Mutex.unlock sh.m)
      t.shards;
    Array.iter Domain.join t.domains
  end
