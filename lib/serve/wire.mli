(** Binary wire protocol for [hwts-serve].

    Every frame is a 4-byte big-endian length prefix followed by that many
    payload bytes; the payload's first byte is the opcode.  Integers are
    8-byte big-endian two's complement (OCaml [int] range), counts are
    4-byte big-endian.  A [Batch] carries a count and the concatenated
    payloads of its sub-requests — batches do not nest, and the response
    to a batch is an [Rbatch] of the sub-responses in submission order.

    The codec is strict: a length prefix of zero or above {!max_payload},
    an unknown opcode, a truncated payload, trailing bytes after a
    well-formed body, or a nested batch all raise {!Malformed}.  A frame
    whose prefix has not fully arrived simply waits — the decoder is
    incremental, so pipelined frames can be fed in arbitrary chunks. *)

type request =
  | Get of int
  | Insert of int
  | Delete of int
  | Range of int * int  (** [lo, hi], inclusive *)
  | Batch of request array  (** no nested batches *)
  | Ping
  | MultiGet of int array
      (** membership of every key against one captured snapshot cut;
          answered with {!Bools} under a single label *)
  | MultiRange of (int * int) array
      (** every [(lo, hi)] range against one captured snapshot cut;
          answered with {!Keyss} under a single label *)

type response =
  | Bool of bool  (** Get/Insert/Delete result *)
  | Keys of int * int array
      (** snapshot label (in the server structure's clock), then the keys *)
  | Rbatch of response array
  | Pong
  | Err of string
  | Bools of int * bool array
      (** snapshot label, then per-key membership, positionally *)
  | Keyss of int * int array array
      (** snapshot label, then per-range sorted keys, positionally *)

val max_payload : int
(** Upper bound on a frame's payload size (16 MiB). *)

exception Malformed of string

val encode_request : Buffer.t -> request -> unit
(** Append one framed request.  Raises [Invalid_argument] on a nested
    batch or an oversized frame. *)

val encode_response : Buffer.t -> response -> unit

(** Incremental decoder: feed raw bytes, pull complete frames. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> Bytes.t -> int -> int -> unit
(** [feed d buf off len] appends [len] bytes starting at [off]. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by a decoded frame. *)

val next_request : decoder -> request option
(** The next complete request frame, or [None] if more bytes are needed.
    Raises {!Malformed} on protocol violations. *)

val next_response : decoder -> response option
