let m_conns = Hwts_obs.Registry.counter "serve.connections"
let m_requests = Hwts_obs.Registry.counter "serve.requests"
let m_malformed = Hwts_obs.Registry.counter "serve.malformed"

(* A pipelined connection: the reader decodes frames and routes them,
   pushing one pending cell per request onto [out]; shard workers fill
   the cells; the writer flushes fulfilled cells strictly in FIFO order.
   One mutex/condition pair covers both the queue and cell fulfillment —
   contention is per-connection, not global. *)
type conn = {
  fd : Unix.file_descr;
  m : Mutex.t;
  c : Condition.t;
  out : Wire.response option ref Queue.t;
  mutable eof : bool; (* reader finished (EOF, error or malformed) *)
  mutable reader : Thread.t option;
  mutable writer : Thread.t option;
}

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  shards : Shards.t;
  conns : conn list ref;
  conns_m : Mutex.t;
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  stop_m : Mutex.t;
  mutable stopped : bool;
}

let write_all fd buf =
  let b = Buffer.to_bytes buf in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let reader_loop t conn =
  let buf = Bytes.create 65536 in
  let dec = Wire.decoder () in
  let running = ref true in
  while !running do
    let n = try Unix.read conn.fd buf 0 (Bytes.length buf) with _ -> 0 in
    if n = 0 then running := false
    else begin
      Wire.feed dec buf 0 n;
      try
        let more = ref true in
        while !more do
          match Wire.next_request dec with
          | None -> more := false
          | Some req ->
            Hwts_obs.Counter.incr m_requests;
            let cell = ref None in
            Mutex.lock conn.m;
            Queue.push cell conn.out;
            Mutex.unlock conn.m;
            Shards.submit t.shards req (fun r ->
                Mutex.lock conn.m;
                cell := Some r;
                Condition.broadcast conn.c;
                Mutex.unlock conn.m)
        done
      with Wire.Malformed msg ->
        (* answer the offense in-order, then stop reading: the writer
           flushes everything (including the error) before closing *)
        Hwts_obs.Counter.incr m_malformed;
        let cell = ref (Some (Wire.Err msg)) in
        Mutex.lock conn.m;
        Queue.push cell conn.out;
        Mutex.unlock conn.m;
        running := false
    end
  done;
  Mutex.lock conn.m;
  conn.eof <- true;
  Condition.broadcast conn.c;
  Mutex.unlock conn.m

let writer_loop conn =
  let out = Buffer.create 4096 in
  let running = ref true in
  while !running do
    Mutex.lock conn.m;
    (* wait until the FIFO head is fulfilled (order is the contract) or
       the stream is over *)
    let rec await () =
      match Queue.peek_opt conn.out with
      | Some { contents = Some _ } -> `Write
      | Some { contents = None } ->
        Condition.wait conn.c conn.m;
        await ()
      | None ->
        if conn.eof then `Done
        else begin
          Condition.wait conn.c conn.m;
          await ()
        end
    in
    match await () with
    | `Done ->
      Mutex.unlock conn.m;
      running := false
    | `Write ->
      let r =
        match !(Queue.pop conn.out) with Some r -> r | None -> assert false
      in
      Mutex.unlock conn.m;
      Buffer.clear out;
      Wire.encode_response out r;
      (try write_all conn.fd out
       with _ ->
         (* client went away: keep draining cells so shard completions
            have somewhere to land, but write nothing further *)
         ())
  done;
  (try Unix.close conn.fd with _ -> ())

let accept_loop t =
  let running = ref true in
  while !running do
    match Unix.accept t.listen_fd with
    | exception _ -> running := false (* listener closed by stop *)
    | fd, _ ->
      if Atomic.get t.stopping then (try Unix.close fd with _ -> ())
      else begin
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
        Hwts_obs.Counter.incr m_conns;
        let conn =
          {
            fd;
            m = Mutex.create ();
            c = Condition.create ();
            out = Queue.create ();
            eof = false;
            reader = None;
            writer = None;
          }
        in
        conn.reader <- Some (Thread.create (fun () -> reader_loop t conn) ());
        conn.writer <- Some (Thread.create (fun () -> writer_loop conn) ());
        Mutex.lock t.conns_m;
        t.conns := conn :: !(t.conns);
        Mutex.unlock t.conns_m
      end
  done

let start ?(host = "127.0.0.1") ~port shards =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.listen fd 128;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      listen_fd = fd;
      port;
      shards;
      conns = ref [];
      conns_m = Mutex.create ();
      stopping = Atomic.make false;
      accept_thread = None;
      stop_m = Mutex.create ();
      stopped = false;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.port
let router t = t.shards

let stop t =
  Mutex.lock t.stop_m;
  let first = not t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_m;
  if first then begin
    Atomic.set t.stopping true;
    (* 1. no new connections: shutdown wakes a thread parked in
       [accept] (closing the fd alone does not, on Linux); close only
       after the accept thread is gone *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (* 2. unblock every reader: shutdown (not close) reliably wakes a
       thread parked in [read]; writers then flush all in-flight
       responses and close the fds themselves *)
    Mutex.lock t.conns_m;
    let conns = !(t.conns) in
    Mutex.unlock t.conns_m;
    List.iter
      (fun conn ->
        try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      conns;
    List.iter
      (fun conn ->
        (match conn.reader with Some th -> Thread.join th | None -> ());
        match conn.writer with Some th -> Thread.join th | None -> ())
      conns;
    (* 3. all responses are out, so the shard queues are empty: drain
       formally and join the worker domains *)
    Shards.stop t.shards
  end
