(** Pipelined load-generator client for [hwts-serve].

    Opens [connections] sockets, each driven by one thread that keeps up
    to [pipeline] requests outstanding — responses are matched back in
    FIFO order (the server's ordering contract).  Depth is the lever the
    serving experiment sweeps: at depth 1 a shard drains one range per
    wakeup and coalescing has nothing to merge; at depth >= 4 the queue
    holds several ranges per drain and one snapshot acquisition covers
    them all.

    The op stream is seeded and per-connection deterministic: a
    {!Workload.Mix} over keys drawn uniformly or Zipfian ([theta] > 0,
    scrambled so the hot ranks spread across shard partitions).
    Client-observed latency lands in [serve.client.latency.<class>]
    histograms (nanoseconds) in the process-global obs registry. *)

type config = {
  host : string;
  port : int;
  connections : int;
  pipeline : int;  (** max outstanding requests per connection, >= 1 *)
  ops : int;  (** operations per connection *)
  key_space : int;
  mix : Workload.Mix.t;
  rq_len : int;  (** span of each range query *)
  theta : float;  (** 0 = uniform keys; > 0 = scrambled Zipfian *)
  batch : int;  (** > 1 groups that many ops into one Batch frame *)
  multiget : int;
      (** > 1 ships membership probes as MultiGet frames of that many
          keys — one snapshot label covers them all server-side *)
  seed : int;
}

val default : config
(** localhost:7621, 4 connections, pipeline 8, 10_000 ops each,
    key space 16384, mix 20-10-70, rq_len 64, uniform keys, no
    batching, multiget off, seed 1. *)

type result = {
  ops_sent : int;  (** individual operations (batch members counted) *)
  responses : int;  (** frames received *)
  errors : int;  (** [Err] responses *)
  elapsed : float;  (** wall seconds, connect to last response *)
}

val run : config -> result
(** Drive the configured load; returns once every connection has sent
    its ops, received every response and closed. *)
