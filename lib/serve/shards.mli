(** Sharded execution engine: one structure instance per shard, all built
    over a {e single} timestamp provider.

    Provider sharing is the load-bearing invariant.  Functor generativity
    in {!Workload.Targets} is per [instance] call, not per [create]: one
    call yields one provider module, and the [shards] structure instances
    created from it label against that one clock.  Labels from different
    shards are therefore mutually comparable — the Strict_sharded-style
    slot-id discipline extends across the whole fleet, so a cross-shard
    range response can report one (maximal) label its parts agree under.

    Keys live in [1, key_space], partitioned contiguously: shard [i] owns
    [[i*span + 1, (i+1)*span]].  Each shard runs one worker domain that
    drains its queue in arrival order; point operations keep per-shard
    FIFO semantics, and all range sub-queries drained together execute —
    when coalescing is on — under a single snapshot acquisition via
    [range_queries_labeled].  That is the paper's amortization kernel at
    service scale: the batcher pays one timestamp advance (and, for the
    lock-based techniques, one snapshot critical section) for every range
    in the drain. *)

type t

val create :
  ?reclaim:Workload.Targets.reclaim ->
  structure:string ->
  provider:Workload.Targets.ts ->
  shards:int ->
  key_space:int ->
  coalesce:bool ->
  unit ->
  t
(** Builds [shards] instances of the named structure over one shared
    provider and the given reclamation backend (default [`Ebr]), and
    spawns one worker domain per shard.  Shard workers announce a
    quiescence point after each drained batch and go offline on stop.
    Raises [Invalid_argument] on an unknown structure, an unsupported
    structure/provider combination, or non-positive [shards]/[key_space]. *)

val structure_name : t -> string
val provider : t -> string

(** Canonical name of the reclamation backend the shards were built over. *)
val reclaim : t -> string
val shard_count : t -> int
val key_space : t -> int
val coalesce : t -> bool

val now : t -> int
(** A read of the fleet's shared clock (labels are comparable with it). *)

val submit : t -> Wire.request -> (Wire.response -> unit) -> unit
(** Route a request.  The completion runs on a worker domain (or inline
    for [Ping], out-of-range keys and empty batches) exactly once.
    Cross-shard ranges fan out to every owning shard and complete when
    the last part does, with the maximal part label.  After {!stop},
    completes with [Err]. *)

val exec : t -> Wire.request -> Wire.response
(** Blocking {!submit}, for tests and simple clients. *)

val stop : t -> unit
(** Drain: workers finish every queued task, then exit; joins all worker
    domains.  Idempotent. *)
