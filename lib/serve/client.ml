let hc_get = Hwts_obs.Registry.histogram "serve.client.latency.get"
let hc_insert = Hwts_obs.Registry.histogram "serve.client.latency.insert"
let hc_delete = Hwts_obs.Registry.histogram "serve.client.latency.delete"
let hc_range = Hwts_obs.Registry.histogram "serve.client.latency.range"
let hc_batch = Hwts_obs.Registry.histogram "serve.client.latency.batch"
let hc_ping = Hwts_obs.Registry.histogram "serve.client.latency.ping"
let hc_multiget = Hwts_obs.Registry.histogram "serve.client.latency.multiget"

let hc_multirange =
  Hwts_obs.Registry.histogram "serve.client.latency.multirange"

type config = {
  host : string;
  port : int;
  connections : int;
  pipeline : int;
  ops : int;
  key_space : int;
  mix : Workload.Mix.t;
  rq_len : int;
  theta : float;
  batch : int;
  multiget : int;
  seed : int;
}

let default =
  {
    host = "127.0.0.1";
    port = 7621;
    connections = 4;
    pipeline = 8;
    ops = 10_000;
    key_space = 16_384;
    mix = Workload.Mix.make ~u:20 ~rq:10 ~c:70;
    rq_len = 64;
    theta = 0.;
    batch = 1;
    multiget = 1;
    seed = 1;
  }

type result = {
  ops_sent : int;
  responses : int;
  errors : int;
  elapsed : float;
}

let hist_of = function
  | Wire.Get _ -> hc_get
  | Wire.Insert _ -> hc_insert
  | Wire.Delete _ -> hc_delete
  | Wire.Range _ -> hc_range
  | Wire.Batch _ -> hc_batch
  | Wire.Ping -> hc_ping
  | Wire.MultiGet _ -> hc_multiget
  | Wire.MultiRange _ -> hc_multirange

(* Individual operations a request stands for, for ops accounting:
   batch members, multiget keys and multirange ranges all count. *)
let op_count = function
  | Wire.MultiGet ks -> Array.length ks
  | Wire.MultiRange rs -> Array.length rs
  | _ -> 1

(* With [multiget > 1], membership probes ship as one MultiGet frame of
   that many keys (the picked key plus fresh draws) — the client-side
   form of the reads-per-acquisition lever. *)
let op_to_request cfg ~key = function
  | Workload.Mix.Insert k -> Wire.Insert k
  | Workload.Mix.Delete k -> Wire.Delete k
  | Workload.Mix.Contains k ->
    if cfg.multiget > 1 then
      Wire.MultiGet
        (Array.init cfg.multiget (fun i -> if i = 0 then k else key ()))
    else Wire.Get k
  | Workload.Mix.Range k ->
    Wire.Range (k, min cfg.key_space (k + cfg.rq_len - 1))

let write_all fd b off len =
  let off = ref off and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd b !off !remaining in
    off := !off + n;
    remaining := !remaining - n
  done

(* One connection's drive loop: send until [pipeline] frames are in
   flight, then block on the socket until at least one response lands.
   [inflight] remembers each frame's class histogram and send time; the
   FIFO discipline mirrors the server's ordering contract. *)
let drive cfg conn_id =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port)
  in
  Unix.connect fd addr;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  let rng = Dstruct.Prng.make ~seed:(cfg.seed + (1000 * (conn_id + 1))) in
  let zipf =
    if cfg.theta > 0. then
      Some
        (Workload.Zipf.scrambled ~seed:cfg.seed
           (Workload.Zipf.make ~n:cfg.key_space ~theta:cfg.theta))
    else None
  in
  let key () =
    match zipf with
    | Some z -> Workload.Zipf.sample z rng
    | None -> 1 + Dstruct.Prng.below rng cfg.key_space
  in
  let next_op () =
    op_to_request cfg ~key (Workload.Mix.pick_with cfg.mix rng ~key)
  in
  let next_request () =
    if cfg.batch <= 1 then
      let r = next_op () in
      (r, op_count r)
    else
      let n = min cfg.batch cfg.ops in
      let reqs = Array.init n (fun _ -> next_op ()) in
      (Wire.Batch reqs, Array.fold_left (fun a r -> a + op_count r) 0 reqs)
  in
  let dec = Wire.decoder () in
  let rbuf = Bytes.create 65536 in
  let wbuf = Buffer.create 4096 in
  let inflight = Queue.create () in
  let ops_sent = ref 0 and responses = ref 0 and errors = ref 0 in
  let rec count_errors = function
    | Wire.Err _ -> incr errors
    | Wire.Rbatch rs -> Array.iter count_errors rs
    | _ -> ()
  in
  let recv_one () =
    let got = ref false in
    while not !got do
      (match Wire.next_response dec with
      | Some r ->
        let h, t0 = Queue.pop inflight in
        Hwts_obs.Histogram.record h (Tsc.monotonic_ns () - t0);
        count_errors r;
        incr responses;
        got := true
      | None ->
        let n = Unix.read fd rbuf 0 (Bytes.length rbuf) in
        if n = 0 then failwith "serve client: connection closed mid-stream";
        Wire.feed dec rbuf 0 n)
    done
  in
  while !ops_sent < cfg.ops do
    (* top the window up *)
    while Queue.length inflight < cfg.pipeline && !ops_sent < cfg.ops do
      let req, n = next_request () in
      Buffer.clear wbuf;
      Wire.encode_request wbuf req;
      Queue.push (hist_of req, Tsc.monotonic_ns ()) inflight;
      let b = Buffer.to_bytes wbuf in
      write_all fd b 0 (Bytes.length b);
      ops_sent := !ops_sent + n
    done;
    recv_one ()
  done;
  while not (Queue.is_empty inflight) do
    recv_one ()
  done;
  (try Unix.close fd with _ -> ());
  (!ops_sent, !responses, !errors)

let run cfg =
  if cfg.pipeline < 1 then invalid_arg "Client.run: pipeline must be >= 1";
  if cfg.connections < 1 then
    invalid_arg "Client.run: connections must be >= 1";
  let t0 = Unix.gettimeofday () in
  let results = Array.make cfg.connections (0, 0, 0) in
  let failure = Atomic.make None in
  let threads =
    List.init cfg.connections (fun i ->
        Thread.create
          (fun () ->
            try results.(i) <- drive cfg i
            with e -> Atomic.set failure (Some e))
          ())
  in
  List.iter Thread.join threads;
  (match Atomic.get failure with Some e -> raise e | None -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  let ops_sent, responses, errors =
    Array.fold_left
      (fun (a, b, c) (x, y, z) -> (a + x, b + y, c + z))
      (0, 0, 0) results
  in
  { ops_sent; responses; errors; elapsed }
