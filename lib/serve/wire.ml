type request =
  | Get of int
  | Insert of int
  | Delete of int
  | Range of int * int
  | Batch of request array
  | Ping
  | MultiGet of int array
  | MultiRange of (int * int) array

type response =
  | Bool of bool
  | Keys of int * int array
  | Rbatch of response array
  | Pong
  | Err of string
  | Bools of int * bool array
  | Keyss of int * int array array

let max_payload = 1 lsl 24

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* opcodes: requests in the low range, responses with the high bit set *)
let op_get = 0x01
let op_insert = 0x02
let op_delete = 0x03
let op_range = 0x04
let op_batch = 0x05
let op_ping = 0x06
let op_multiget = 0x07
let op_multirange = 0x08
let op_bool = 0x81
let op_keys = 0x84
let op_rbatch = 0x85
let op_pong = 0x86
let op_err = 0x87
let op_bools = 0x88
let op_keyss = 0x89

(* --- encoding ------------------------------------------------------- *)

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)

let rec put_request_body b ~nested = function
  | Get k ->
    Buffer.add_char b (Char.chr op_get);
    put_i64 b k
  | Insert k ->
    Buffer.add_char b (Char.chr op_insert);
    put_i64 b k
  | Delete k ->
    Buffer.add_char b (Char.chr op_delete);
    put_i64 b k
  | Range (lo, hi) ->
    Buffer.add_char b (Char.chr op_range);
    put_i64 b lo;
    put_i64 b hi
  | Batch reqs ->
    if nested then invalid_arg "Wire.encode_request: nested batch";
    Buffer.add_char b (Char.chr op_batch);
    put_u32 b (Array.length reqs);
    Array.iter (put_request_body b ~nested:true) reqs
  | Ping -> Buffer.add_char b (Char.chr op_ping)
  | MultiGet keys ->
    Buffer.add_char b (Char.chr op_multiget);
    put_u32 b (Array.length keys);
    Array.iter (put_i64 b) keys
  | MultiRange ranges ->
    Buffer.add_char b (Char.chr op_multirange);
    put_u32 b (Array.length ranges);
    Array.iter
      (fun (lo, hi) ->
        put_i64 b lo;
        put_i64 b hi)
      ranges

let rec put_response_body b ~nested = function
  | Bool v ->
    Buffer.add_char b (Char.chr op_bool);
    Buffer.add_char b (if v then '\001' else '\000')
  | Keys (label, keys) ->
    Buffer.add_char b (Char.chr op_keys);
    put_i64 b label;
    put_u32 b (Array.length keys);
    Array.iter (put_i64 b) keys
  | Rbatch rs ->
    if nested then invalid_arg "Wire.encode_response: nested batch";
    Buffer.add_char b (Char.chr op_rbatch);
    put_u32 b (Array.length rs);
    Array.iter (put_response_body b ~nested:true) rs
  | Pong -> Buffer.add_char b (Char.chr op_pong)
  | Err msg ->
    Buffer.add_char b (Char.chr op_err);
    Buffer.add_string b msg
  | Bools (label, bs) ->
    Buffer.add_char b (Char.chr op_bools);
    put_i64 b label;
    put_u32 b (Array.length bs);
    Array.iter (fun v -> Buffer.add_char b (if v then '\001' else '\000')) bs
  | Keyss (label, kss) ->
    Buffer.add_char b (Char.chr op_keyss);
    put_i64 b label;
    put_u32 b (Array.length kss);
    Array.iter
      (fun ks ->
        put_u32 b (Array.length ks);
        Array.iter (put_i64 b) ks)
      kss

let frame encode b v =
  let body = Buffer.create 32 in
  encode body ~nested:false v;
  let n = Buffer.length body in
  if n > max_payload then invalid_arg "Wire: frame exceeds max_payload";
  put_u32 b n;
  Buffer.add_buffer b body

let encode_request b r = frame put_request_body b r
let encode_response b r = frame put_response_body b r

(* --- incremental decoder -------------------------------------------- *)

type decoder = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

let decoder () = { buf = Bytes.create 4096; start = 0; len = 0 }
let buffered d = d.len

let feed d src off len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Wire.feed";
  (* compact, then grow if the tail still does not fit *)
  if d.start + d.len + len > Bytes.length d.buf then begin
    if d.start > 0 then begin
      Bytes.blit d.buf d.start d.buf 0 d.len;
      d.start <- 0
    end;
    if d.len + len > Bytes.length d.buf then begin
      let cap = ref (Bytes.length d.buf * 2) in
      while d.len + len > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit d.buf 0 bigger 0 d.len;
      d.buf <- bigger
    end
  end;
  Bytes.blit src off d.buf (d.start + d.len) len;
  d.len <- d.len + len

(* cursor over one frame's payload *)
type cursor = { bytes : Bytes.t; stop : int; mutable pos : int }

let need c n what =
  if c.pos + n > c.stop then malformed "truncated %s" what

let get_u8 c what =
  need c 1 what;
  let v = Char.code (Bytes.get c.bytes c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u32 c what =
  need c 4 what;
  let v =
    (Char.code (Bytes.get c.bytes c.pos) lsl 24)
    lor (Char.code (Bytes.get c.bytes (c.pos + 1)) lsl 16)
    lor (Char.code (Bytes.get c.bytes (c.pos + 2)) lsl 8)
    lor Char.code (Bytes.get c.bytes (c.pos + 3))
  in
  c.pos <- c.pos + 4;
  v

let get_i64 c what =
  need c 8 what;
  let v = Int64.to_int (Bytes.get_int64_be c.bytes c.pos) in
  c.pos <- c.pos + 8;
  v

let rec read_request c ~nested =
  match get_u8 c "opcode" with
  | op when op = op_get -> Get (get_i64 c "get key")
  | op when op = op_insert -> Insert (get_i64 c "insert key")
  | op when op = op_delete -> Delete (get_i64 c "delete key")
  | op when op = op_range ->
    let lo = get_i64 c "range lo" in
    let hi = get_i64 c "range hi" in
    Range (lo, hi)
  | op when op = op_batch ->
    if nested then malformed "nested batch";
    let n = get_u32 c "batch count" in
    (* each sub-request is at least one opcode byte *)
    if n > c.stop - c.pos then malformed "batch count %d exceeds payload" n;
    Batch (Array.init n (fun _ -> read_request c ~nested:true))
  | op when op = op_ping -> Ping
  | op when op = op_multiget ->
    let n = get_u32 c "multiget count" in
    if n * 8 > c.stop - c.pos then
      malformed "multiget count %d exceeds payload" n;
    MultiGet (Array.init n (fun _ -> get_i64 c "multiget key"))
  | op when op = op_multirange ->
    let n = get_u32 c "multirange count" in
    if n * 16 > c.stop - c.pos then
      malformed "multirange count %d exceeds payload" n;
    MultiRange
      (Array.init n (fun _ ->
           let lo = get_i64 c "multirange lo" in
           let hi = get_i64 c "multirange hi" in
           (lo, hi)))
  | op -> malformed "unknown request opcode 0x%02x" op

let rec read_response c ~nested =
  match get_u8 c "opcode" with
  | op when op = op_bool -> (
    match get_u8 c "bool value" with
    | 0 -> Bool false
    | 1 -> Bool true
    | v -> malformed "bad bool byte 0x%02x" v)
  | op when op = op_keys ->
    let label = get_i64 c "keys label" in
    let n = get_u32 c "keys count" in
    if n * 8 > c.stop - c.pos then malformed "keys count %d exceeds payload" n;
    Keys (label, Array.init n (fun _ -> get_i64 c "key"))
  | op when op = op_rbatch ->
    if nested then malformed "nested batch response";
    let n = get_u32 c "rbatch count" in
    if n > c.stop - c.pos then malformed "rbatch count %d exceeds payload" n;
    Rbatch (Array.init n (fun _ -> read_response c ~nested:true))
  | op when op = op_pong -> Pong
  | op when op = op_err ->
    let n = c.stop - c.pos in
    let msg = Bytes.sub_string c.bytes c.pos n in
    c.pos <- c.stop;
    Err msg
  | op when op = op_bools ->
    let label = get_i64 c "bools label" in
    let n = get_u32 c "bools count" in
    if n > c.stop - c.pos then malformed "bools count %d exceeds payload" n;
    Bools
      ( label,
        Array.init n (fun _ ->
            match get_u8 c "bools value" with
            | 0 -> false
            | 1 -> true
            | v -> malformed "bad bool byte 0x%02x" v) )
  | op when op = op_keyss ->
    let label = get_i64 c "keyss label" in
    let n = get_u32 c "keyss count" in
    (* each per-range result is at least its own 4-byte count *)
    if n * 4 > c.stop - c.pos then malformed "keyss count %d exceeds payload" n;
    Keyss
      ( label,
        Array.init n (fun _ ->
            let m = get_u32 c "keyss range count" in
            if m * 8 > c.stop - c.pos then
              malformed "keyss range count %d exceeds payload" m;
            Array.init m (fun _ -> get_i64 c "keyss key")) )
  | op -> malformed "unknown response opcode 0x%02x" op

let next_frame d read =
  if d.len < 4 then None
  else begin
    let b = d.buf and s = d.start in
    let n =
      (Char.code (Bytes.get b s) lsl 24)
      lor (Char.code (Bytes.get b (s + 1)) lsl 16)
      lor (Char.code (Bytes.get b (s + 2)) lsl 8)
      lor Char.code (Bytes.get b (s + 3))
    in
    if n = 0 then malformed "zero-length frame";
    if n > max_payload then malformed "frame length %d exceeds max_payload" n;
    if d.len < 4 + n then None
    else begin
      let c = { bytes = b; stop = s + 4 + n; pos = s + 4 } in
      let v = read c ~nested:false in
      if c.pos <> c.stop then
        malformed "%d trailing bytes after frame body" (c.stop - c.pos);
      d.start <- d.start + 4 + n;
      d.len <- d.len - 4 - n;
      if d.len = 0 then d.start <- 0;
      Some v
    end
  end

let next_request d = next_frame d read_request
let next_response d = next_frame d read_response
