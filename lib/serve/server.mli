(** TCP front end for the sharded range-query engine.

    One accept thread; per connection a reader thread (decode, route) and
    a writer thread (responses in request order, so clients may pipeline
    arbitrarily deep).  All request execution happens on the shard worker
    domains — connection threads only move bytes — which is what lets a
    deep pipeline pile many range queries into one shard drain, the
    precondition for snapshot coalescing to pay off.

    {!stop} is the graceful path wired to SIGINT in [hwts-serve]: stop
    accepting, shut down the read side of every connection, let writers
    flush every in-flight response, join connection threads, then drain
    and join the shard workers.  No accepted request is dropped. *)

type t

val start : ?host:string -> port:int -> Shards.t -> t
(** Bind and listen ([host] defaults to ["127.0.0.1"]; [port] 0 picks a
    free port), then serve in background threads.  The [Shards.t] is
    owned by the server from here on: {!stop} stops it. *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val router : t -> Shards.t

val stop : t -> unit
(** Graceful shutdown as described above.  Blocks until every connection
    is flushed and every worker domain joined.  Idempotent. *)
